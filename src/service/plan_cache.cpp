#include "service/plan_cache.h"

#include <cstdio>

namespace permuq::service {

std::shared_ptr<const std::string>
PlanCache::lookup(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.payload;
}

void
PlanCache::insert(const std::string& key,
                  std::shared_ptr<const std::string> fragment)
{
    if (!fragment)
        return;
    const std::size_t cost = entry_bytes(key, *fragment);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= it->second.bytes;
        it->second.payload = std::move(fragment);
        it->second.bytes = cost;
        bytes_ += cost;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        evict_to_budget_locked();
        return;
    }
    if (cost > byte_budget_)
        return; // would evict everything and still not fit
    lru_.push_front(key);
    Entry entry;
    entry.payload = std::move(fragment);
    entry.bytes = cost;
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    bytes_ += cost;
    evict_to_budget_locked();
}

void
PlanCache::evict_to_budget_locked()
{
    while (bytes_ > byte_budget_ && !lru_.empty()) {
        const std::string& victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        lru_.pop_back();
        ++evictions_;
    }
}

std::size_t
PlanCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::size_t
PlanCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::int64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::int64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::int64_t
PlanCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::string
PlanCache::make_key(const Request& request,
                    const std::string& resolved_tier)
{
    char buf[64];
    std::string key = "arch=" + request.arch;
    key += ";n=" + std::to_string(request.problem_n);
    if (request.has_edges) {
        // Pack edges as raw little-endian int32 pairs: exact, compact,
        // and std::string carries embedded NULs without complaint.
        key += ";edges=";
        key.reserve(key.size() + request.edges.size() * 8);
        for (const auto& edge : request.edges)
            for (const std::int32_t v : {edge.a, edge.b})
                for (int shift = 0; shift < 32; shift += 8)
                    key.push_back(
                        static_cast<char>((v >> shift) & 0xFF));
    } else {
        std::snprintf(buf, sizeof buf, ";density=%.17g;seed=%llu",
                      request.density,
                      static_cast<unsigned long long>(request.seed));
        key += buf;
    }
    key += ";tier=" + resolved_tier;
    std::snprintf(buf, sizeof buf, ";alpha=%.17g", request.alpha);
    key += buf;
    key += ";crosstalk=";
    key += request.crosstalk ? '1' : '0';
    key += ";shard=" + std::to_string(request.shard);
    key += ";margin=" + std::to_string(request.shard_margin);
    key += ";full_qaoa=";
    key += request.full_qaoa ? '1' : '0';
    return key;
}

} // namespace permuq::service
