/**
 * @file
 * permuqd's server core: a blocking-accept TCP listener on loopback,
 * one reader thread per connection, and a shared bounded worker pool
 * (common/parallel's TaskQueue) executing the compiles.
 *
 * Request flow (see DESIGN.md §4j):
 *
 *   accept thread ── spawns ──> per-connection reader
 *       reader: recv -> FrameDecoder -> parse_request
 *         ping/metrics/shutdown  answered inline (cheap)
 *         compile                try_submit() to the TaskQueue;
 *                                rejection => typed `overloaded` frame
 *       worker: plan-cache lookup -> (miss) core::compile + insert
 *               -> result frame, written under the connection's write
 *               mutex (pipelined responses may interleave per request
 *               id, but each frame is written atomically)
 *
 * Admission control is two-level: the TaskQueue bounds the *global*
 * backlog (queue_depth), and each connection bounds its own
 * outstanding compiles (max_inflight) so one pipelining client cannot
 * monopolize the queue. Both rejections surface as `overloaded`.
 *
 * Shutdown: a "shutdown" request (or SIGTERM in permuqd) flips
 * shutdown_requested(); the owner then calls stop(), which closes the
 * listener, drains accepted compiles, severs connections, and joins
 * every thread. Responses for already-accepted work are still
 * delivered.
 */
#ifndef PERMUQ_SERVICE_SERVER_H
#define PERMUQ_SERVICE_SERVER_H

#include <cstdint>
#include <string>

namespace permuq::service {

class PlanCache;

/** Tunables for one Server (env defaults applied by permuqd). */
struct ServerOptions
{
    /** TCP port on 127.0.0.1; 0 = ephemeral (read back via port()). */
    int port = 0;
    /** Worker threads executing compiles; 0 = hardware concurrency. */
    int workers = 0;
    /** Global bound on queued-but-not-started compiles. */
    std::size_t queue_depth = 64;
    /** Per-connection bound on outstanding compile requests. */
    std::size_t max_inflight = 32;
    /** Plan-cache byte budget. */
    std::size_t cache_budget_bytes = 256u * 1024u * 1024u;
};

/** The permuqd server core (one listening socket). */
class Server
{
  public:
    explicit Server(const ServerOptions& options);

    /** Calls stop(). */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind/listen/start the accept thread; false + @p error on
     *  failure (e.g. the port is taken). */
    bool start(std::string& error);

    /** The bound port (after start(); ephemeral ports resolved). */
    int port() const;

    /** True once a shutdown request has been received. */
    bool shutdown_requested() const;

    /**
     * Stop accepting, drain accepted compiles, sever connections, and
     * join all threads. Idempotent.
     */
    void stop();

    /** The shared plan cache (stats for tests and telemetry). */
    const PlanCache& cache() const;

    const ServerOptions& options() const;

  private:
    struct Impl;
    Impl* impl_;
};

} // namespace permuq::service

#endif // PERMUQ_SERVICE_SERVER_H
