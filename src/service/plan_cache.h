/**
 * @file
 * Cross-request compiled-plan cache for the compile service.
 *
 * Extends the whole-plan memoization idea of core's ScheduleCache one
 * level up: where ScheduleCache memoizes scheduling decisions inside a
 * single compile, PlanCache memoizes the entire *response fragment* —
 * QASM program, CompileReport JSON, plan summary — across requests and
 * connections, so a repeat request is served without recompiling (and
 * byte-identical to the cold response, because the stored fragment IS
 * the cold response's tail).
 *
 * Keys are exact, not hashed: the canonical key string encodes the
 * architecture fingerprint, the problem graph (explicit edges packed
 * as binary, or the random spec), and every resolved compiler option.
 * Two requests share an entry iff they would be compiled identically,
 * and collisions are impossible by construction. The key bytes are
 * negligible next to the QASM they index.
 *
 * Eviction is strict LRU under a byte budget, using the exact-footprint
 * accounting convention of the circuit memory_bytes() reports: an
 * entry's cost is its payload size plus its key size counted once per
 * index that stores it (the LRU list and the map both hold the key)
 * plus a fixed per-entry bookkeeping constant — no estimates, so the
 * cache-budget unit tests can predict eviction points exactly.
 *
 * Thread-safe: every public method takes the internal mutex. Payloads
 * are handed out as shared_ptr<const string> so a hit can be written
 * to a socket after the entry is evicted.
 */
#ifndef PERMUQ_SERVICE_PLAN_CACHE_H
#define PERMUQ_SERVICE_PLAN_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/protocol.h"

namespace permuq::service {

/** LRU plan cache under a byte budget (see file comment). */
class PlanCache
{
  public:
    /** Fixed bookkeeping cost charged per entry on top of the key and
     *  payload bytes (list node + map node + control blocks). */
    static constexpr std::size_t kEntryOverheadBytes = 128;

    explicit PlanCache(std::size_t byte_budget)
        : byte_budget_(byte_budget)
    {
    }

    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /**
     * The cached plan for @p key (promoted to most-recently-used), or
     * nullptr on a miss. Counts a hit or a miss either way.
     */
    std::shared_ptr<const std::string> lookup(const std::string& key);

    /**
     * Store @p fragment under @p key, then evict least-recently-used
     * entries until the footprint is back under budget. An entry whose
     * own cost exceeds the whole budget is not cached at all. Inserting
     * an existing key replaces its payload (and promotes it).
     */
    void insert(const std::string& key,
                std::shared_ptr<const std::string> fragment);

    /** Exact bytes charged for one (key, payload) entry. */
    static std::size_t
    entry_bytes(const std::string& key, const std::string& fragment)
    {
        return 2 * key.size() + fragment.size() + kEntryOverheadBytes;
    }

    /**
     * Canonical cache key of @p request at @p resolved_tier (the tier
     * after Auto resolution — the env-dependent part of the option
     * set, resolved so entries never alias across PERMUQ_TIER edits).
     */
    static std::string make_key(const Request& request,
                                const std::string& resolved_tier);

    std::size_t bytes() const;
    std::size_t entries() const;
    std::size_t byte_budget() const { return byte_budget_; }
    std::int64_t hits() const;
    std::int64_t misses() const;
    std::int64_t evictions() const;

  private:
    struct Entry
    {
        std::shared_ptr<const std::string> payload;
        std::size_t bytes = 0;
        /** Position in lru_ (most-recent at the front). */
        std::list<std::string>::iterator lru_pos;
    };

    void evict_to_budget_locked();

    mutable std::mutex mutex_;
    std::size_t byte_budget_;
    std::size_t bytes_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t evictions_ = 0;
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
};

} // namespace permuq::service

#endif // PERMUQ_SERVICE_PLAN_CACHE_H
