#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace permuq::service {

bool
Client::connect(int port, std::string& error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        error = std::string("connect: ") + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    decoder_ = FrameDecoder();
    return true;
}

bool
Client::send(const Request& request, std::string& error)
{
    return send_raw(encode_frame(build_request_payload(request)),
                    error);
}

bool
Client::send_raw(const std::string& bytes, std::string& error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    const char* data = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
Client::receive(Response& out, std::string& error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    char buf[64 * 1024];
    for (;;) {
        std::string payload;
        const auto status = decoder_.next(payload, error);
        if (status == FrameDecoder::Status::Error)
            return false;
        if (status == FrameDecoder::Status::Frame)
            return parse_response(payload, out, error);
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            error = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = decoder_.buffered_bytes() > 0
                        ? "connection closed mid-frame"
                        : "connection closed";
            return false;
        }
        decoder_.feed(buf, static_cast<std::size_t>(n));
    }
}

bool
Client::call(const Request& request, Response& out, std::string& error)
{
    if (!send(request, error))
        return false;
    if (!receive(out, error))
        return false;
    if (out.id != request.id) {
        error = "response id " + std::to_string(out.id) +
                " does not match request id " +
                std::to_string(request.id);
        return false;
    }
    return true;
}

void
Client::shutdown_write()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace permuq::service
