/**
 * @file
 * The permuqd wire protocol: length-prefixed JSON frames.
 *
 * A frame is a 4-byte big-endian payload length followed by exactly
 * that many bytes of UTF-8 JSON (one object per frame). The length
 * covers the JSON payload only and is capped at kMaxFrameBytes; a
 * prefix above the cap is a protocol error and the connection is
 * closed (the stream cannot be resynchronized once framing is in
 * doubt). Inside an intact frame, bad JSON or a bad request yields a
 * typed error frame and the connection stays usable — that split is
 * what the robustness tests and `permuq-fuzz --protocol` pin down.
 *
 * Every payload object carries:
 *   v    protocol version (kProtocolVersion); mismatch => bad_version
 *   id   caller-chosen request id, echoed verbatim on the response
 *        (responses to pipelined requests may arrive out of order)
 *   type "compile" | "ping" | "metrics" | "shutdown" on requests;
 *        "result" | "pong" | "metrics" | "ok" | "error" on responses
 *
 * Compile responses are assembled as a fixed per-request envelope
 * (id, cached flag, queue/compile wall times) followed by a *plan
 * fragment* — tier, selected candidate, metrics, the QASM program,
 * and the CompileReport JSON. The fragment is what the plan cache
 * stores, so a warm (hit) response replays the cold response's
 * fragment byte for byte; in particular the QASM plan is
 * byte-identical to a one-shot `permuqc --qasm` compile of the same
 * request on both paths.
 *
 * Everything here is transport-agnostic (plain byte buffers), so the
 * codec is directly fuzzable and unit-testable without sockets.
 */
#ifndef PERMUQ_SERVICE_PROTOCOL_H
#define PERMUQ_SERVICE_PROTOCOL_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace permuq::service {

/** Protocol version spoken by this build. */
constexpr std::int32_t kProtocolVersion = 1;

/** Hard cap on one frame's payload; larger prefixes are protocol
 *  errors (a 100k-qubit QASM plan stays well under this). */
constexpr std::size_t kMaxFrameBytes = 64u * 1024u * 1024u;

// ------------------------------------------------------------- errors

/** Typed error kinds carried by "error" response frames. */
enum class ErrorKind : std::int32_t
{
    /** Frame-level breakage: oversized length prefix. The sender
     *  closes the connection after this error. */
    Oversized,
    /** Payload is not valid JSON / not a JSON object. */
    BadJson,
    /** Unsupported protocol version. */
    BadVersion,
    /** Well-formed JSON but an invalid request (unknown type, unknown
     *  arch, out-of-range field, ...). */
    BadRequest,
    /** Admission control: the request queue is full. Retry later. */
    Overloaded,
    /** The compiler threw; message carries what(). */
    Internal,
};

/** Wire name of @p kind ("oversized", "bad_json", ...). */
const char* to_string(ErrorKind kind);

/** Parse a wire name back into @p out; false if unknown. */
bool parse_error_kind(const std::string& name, ErrorKind& out);

// --------------------------------------------------------------- JSON

/**
 * A minimal strict JSON value (null / bool / number / string / array
 * / object), just enough for the protocol payloads. Numbers keep both
 * an integer and a double view (integer when the literal had no
 * fraction/exponent and fits std::int64_t). Parsing is strict RFC
 * 8259: no trailing garbage, no comments, \uXXXX escapes decoded to
 * UTF-8, recursion depth bounded (kMaxJsonDepth) so deeply nested
 * fuzz inputs cannot overflow the stack.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;

    Type type() const { return type_; }
    bool is_object() const { return type_ == Type::Object; }
    bool is_array() const { return type_ == Type::Array; }
    bool is_string() const { return type_ == Type::String; }
    bool is_number() const { return type_ == Type::Number; }
    bool is_bool() const { return type_ == Type::Bool; }

    bool bool_value() const { return bool_; }
    /** Integer view (truncated from the double view when the literal
     *  was fractional). */
    std::int64_t int_value() const { return int_; }
    double double_value() const { return double_; }
    const std::string& string_value() const { return string_; }
    const std::vector<Json>& array() const { return array_; }

    /** Object member, or nullptr when absent (or not an object). */
    const Json* find(const std::string& key) const;

    /** Members in document order (duplicate keys rejected at parse). */
    const std::vector<std::pair<std::string, Json>>&
    members() const
    {
        return members_;
    }

    /**
     * Parse @p text as one JSON document. Returns nullptr and fills
     * @p error on any violation.
     */
    static std::unique_ptr<Json> parse(const std::string& text,
                                       std::string* error);

    static constexpr int kMaxJsonDepth = 64;

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** Escape @p raw for embedding inside a JSON string literal. */
std::string json_escape(const std::string& raw);

// ------------------------------------------------------------ framing

/** Prepend the 4-byte big-endian length prefix to @p payload. */
std::string encode_frame(const std::string& payload);

/**
 * Incremental frame decoder: feed() raw bytes as they arrive, then
 * pull complete payloads with next(). Once a frame-level error is
 * reported the decoder is poisoned (every later next() returns Error)
 * — callers must close the connection, matching the sender contract
 * in the file comment.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
        : max_frame_bytes_(max_frame_bytes)
    {
    }

    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< @p payload holds the next frame's payload
        Error,    ///< framing is broken; close the connection
    };

    void feed(const void* data, std::size_t n);

    Status next(std::string& payload, std::string& error);

    /** Bytes buffered but not yet consumed (a nonzero value at EOF
     *  means the peer disconnected mid-frame). */
    std::size_t buffered_bytes() const { return buffer_.size() - pos_; }

  private:
    std::string buffer_;
    std::size_t pos_ = 0;
    std::size_t max_frame_bytes_;
    bool poisoned_ = false;
};

// ----------------------------------------------------------- requests

/** One decoded request frame (any type). */
struct Request
{
    std::int64_t id = 0;
    /** "compile" | "ping" | "metrics" | "shutdown". */
    std::string type = "compile";

    // ----- device (compile requests) -----
    /** Named architecture: heavyhex|sycamore|grid|hexagon|line|
     *  lattice3d|mumbai. The device is sized to the problem with
     *  smallest_arch(), exactly as permuqc does. */
    std::string arch = "heavyhex";

    // ----- problem: either explicit edges or a random spec -----
    /** Vertex count; with explicit edges, must cover every endpoint. */
    std::int32_t problem_n = 0;
    /** Explicit problem edges; empty + n == 0 means use the random
     *  spec below. */
    std::vector<VertexPair> edges;
    bool has_edges = false;
    /** Random-graph spec (permuqc --qubits/--density/--seed). */
    std::int32_t random_n = 64;
    double density = 0.3;
    std::uint64_t seed = 1;

    // ----- compiler options -----
    /** "fast" | "balanced" | "best" | "auto". */
    std::string tier = "auto";
    double alpha = 0.5;
    bool crosstalk = false;
    std::int32_t shard = 0;
    std::int32_t shard_margin = 0;
    /** QASM emission includes the H prelude, mixer, measures. */
    bool full_qaoa = false;

    /** Test-only knob: the worker sleeps this long before compiling,
     *  so overload tests can hold a worker deterministically. */
    std::int32_t debug_sleep_ms = 0;
};

/**
 * Parse one request payload. On failure fills @p kind / @p message
 * (BadJson, BadVersion, or BadRequest) and returns false. Unknown
 * object keys are rejected (BadRequest) so client/daemon version skew
 * fails loudly instead of silently ignoring options.
 */
bool parse_request(const std::string& payload, Request& out,
                   ErrorKind& kind, std::string& message);

/** Serialize @p request as a frame payload (client side). */
std::string build_request_payload(const Request& request);

// ---------------------------------------------------------- responses

/** Summary fields of a compiled plan, mirrored into the response. */
struct PlanSummary
{
    std::string tier;     ///< tier actually served
    std::string selected; ///< winning candidate
    std::int64_t depth = 0;
    std::int64_t cx = 0;
    std::int64_t swaps = 0;
};

/**
 * The cacheable tail of a compile response: everything after the
 * per-request envelope. Byte-for-byte identical between a cold
 * compile and every warm replay of it.
 */
std::string build_plan_fragment(const PlanSummary& summary,
                                const std::string& qasm,
                                const std::string& report_json);

/**
 * Assemble a full "result" payload: the per-request envelope
 * (id, cached, queue/compile milliseconds) + @p fragment.
 */
std::string build_result_payload(std::int64_t id, bool cached,
                                 double queue_ms, double compile_ms,
                                 const std::string& fragment);

/** A typed "error" payload. */
std::string build_error_payload(std::int64_t id, ErrorKind kind,
                                const std::string& message);

/** "pong" / "ok" acknowledgements and the "metrics" payload. */
std::string build_pong_payload(std::int64_t id);
std::string build_ok_payload(std::int64_t id);
std::string build_metrics_payload(std::int64_t id,
                                  const std::string& prometheus_text);

/** One decoded response frame (client side). */
struct Response
{
    std::int64_t id = 0;
    /** "result" | "pong" | "metrics" | "ok" | "error". */
    std::string type;
    bool cached = false;
    double queue_ms = 0.0;
    double compile_ms = 0.0;
    PlanSummary plan;
    std::string qasm;
    /** Raw CompileReport JSON object ("{}" when absent). */
    std::string report_json;
    /** The plan fragment exactly as it appeared on the wire (what the
     *  cache-identity tests compare). */
    std::string fragment;
    /** Error frames only. */
    ErrorKind error = ErrorKind::Internal;
    std::string message;
    /** Metrics frames only: Prometheus text exposition. */
    std::string prometheus;
};

/** Parse one response payload; false + @p error on malformed input. */
bool parse_response(const std::string& payload, Response& out,
                    std::string& error);

} // namespace permuq::service

#endif // PERMUQ_SERVICE_PROTOCOL_H
