#include "heavy_hex_pattern.h"

#include <unordered_map>
#include <unordered_set>

#include "ata/pattern_builder.h"
#include "ata/verify.h"
#include "common/error.h"

namespace permuq::ata {

SwapSchedule
heavy_hex_pattern(const arch::CouplingGraph& device, std::int32_t path0,
                  std::int32_t path1)
{
    const auto& full_path = device.longest_path();
    fatal_unless(!full_path.empty(),
                 "device exposes no longest path decomposition");
    fatal_unless(path0 >= 0 && path1 >= path0 &&
                     path1 < static_cast<std::int32_t>(full_path.size()),
                 "path interval out of range");

    std::int32_t m = path1 - path0 + 1;
    std::vector<PhysicalQubit> positions(
        full_path.begin() + path0, full_path.begin() + path1 + 1);
    std::unordered_set<PhysicalQubit> on_path(positions.begin(),
                                              positions.end());

    // Off-path qubits attached inside the interval, with the dense
    // path indices of all their on-path neighbors.
    struct Off
    {
        std::int32_t dense;
        std::vector<std::int32_t> neighbor_path_index;
        std::int32_t attach_path_index;
    };
    std::vector<Off> offs;
    std::unordered_map<PhysicalQubit, std::int32_t> path_index;
    for (std::int32_t i = 0; i < m; ++i)
        path_index.emplace(positions[static_cast<std::size_t>(i)], i);
    std::unordered_set<std::int32_t> attach_used;
    for (const auto& att : device.off_path()) {
        if (att.path_index < path0 || att.path_index > path1)
            continue;
        Off off;
        off.dense = static_cast<std::int32_t>(positions.size());
        off.attach_path_index = att.path_index - path0;
        for (PhysicalQubit nb :
             device.connectivity().neighbors(att.off_qubit)) {
            auto it = path_index.find(nb);
            if (it != path_index.end())
                off.neighbor_path_index.push_back(it->second);
        }
        panic_unless(!off.neighbor_path_index.empty(),
                     "off-path qubit has no neighbor inside interval");
        panic_unless(attach_used.insert(off.attach_path_index).second,
                     "two off-path qubits attach at one path position");
        positions.push_back(att.off_qubit);
        offs.push_back(std::move(off));
    }

    PatternBuilder b(positions);

    // One pass of the line pattern over the path segment, with
    // path-to-off interactions interleaved after each compute layer.
    auto off_interactions = [&] {
        for (const auto& off : offs)
            for (std::int32_t nb : off.neighbor_path_index)
                b.compute_if_new(off.dense, nb);
    };
    auto line_pass = [&] {
        if (m < 2) {
            off_interactions();
            return;
        }
        std::int32_t blocks = (m + 1) / 2 + 1;
        for (std::int32_t round = 0; round < blocks; ++round) {
            for (std::int32_t i = 0; i + 1 < m; i += 2)
                b.compute_if_new(i, i + 1);
            for (std::int32_t i = 1; i + 1 < m; i += 2)
                b.compute_if_new(i, i + 1);
            off_interactions();
            if (b.all_met())
                return;
            for (std::int32_t i = 1; i + 1 < m; i += 2)
                b.swap(i, i + 1);
            for (std::int32_t i = 0; i + 1 < m; i += 2)
                b.swap(i, i + 1);
        }
    };

    // Repeated passes: pass 1 covers path-to-path plus opportunistic
    // path-to-off; between passes every off-path qubit swaps onto the
    // path (one layer; the attachment positions are pairwise distinct)
    // so its former occupant traverses the path in the next pass.
    // Two passes cover all but a residue of pairs among the displaced
    // occupants; empirically a third pass always closes heavy-hex
    // devices, and the cap is generous.
    for (std::int32_t pass = 0; pass < 6 && !b.all_met(); ++pass) {
        line_pass();
        if (b.all_met() || offs.empty())
            break;
        for (const auto& off : offs)
            b.swap(off.dense, off.attach_path_index);
    }

    SwapSchedule sched = b.take_schedule();
    if (!b.all_met()) {
        // Safety net (checked, not assumed): route any pair the
        // two-pass construction missed. For the geometries in the
        // evaluation this is empty or a tiny constant tail; tests
        // track that it stays so.
        complete_missing_pairs(device, sched, positions);
    }
    return sched;
}

} // namespace permuq::ata
