/**
 * @file
 * The all-to-all (ATA) schedule abstraction (paper §3).
 *
 * An ATA pattern is a position-level program: an ordered list of slots,
 * each a computation or SWAP between two physical positions. It is
 * defined independently of any problem graph or qubit mapping; the
 * replay engine (replay.h) later walks it against a concrete mapping,
 * executing compute slots whose current logical pair is a problem edge
 * and skipping the rest (§5.2).
 *
 * The defining property, checked by verify.h, is logical coverage:
 * replayed from any initial mapping, every pair of logical qubits is
 * adjacent at some compute slot at least once. Because a schedule only
 * permutes positions, it suffices to check that every pair of *initial
 * occupants* meets.
 */
#ifndef PERMUQ_ATA_SWAP_SCHEDULE_H
#define PERMUQ_ATA_SWAP_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace permuq::ata {

/** One slot of a schedule. */
struct Slot
{
    enum class Kind : std::uint8_t { Compute, Swap };

    Kind kind = Kind::Compute;
    PhysicalQubit p = kInvalidQubit;
    PhysicalQubit q = kInvalidQubit;
};

/**
 * An ordered list of slots. Depth is not stored: the replay engine
 * assigns cycles ASAP, which compacts independent slots into the same
 * cycle automatically (per-qubit program order is preserved, which is
 * sufficient for semantic equivalence since all compute gates commute).
 */
struct SwapSchedule
{
    std::vector<Slot> slots;

    void
    compute(PhysicalQubit p, PhysicalQubit q)
    {
        slots.push_back({Slot::Kind::Compute, p, q});
    }

    void
    swap(PhysicalQubit p, PhysicalQubit q)
    {
        slots.push_back({Slot::Kind::Swap, p, q});
    }

    /** Concatenate another schedule after this one. */
    void
    append(const SwapSchedule& other)
    {
        slots.insert(slots.end(), other.slots.begin(), other.slots.end());
    }

    std::int64_t
    num_slots() const
    {
        return static_cast<std::int64_t>(slots.size());
    }
};

} // namespace permuq::ata

#endif // PERMUQ_ATA_SWAP_SCHEDULE_H
