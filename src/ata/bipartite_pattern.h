/**
 * @file
 * 2xUnit bipartite all-to-all patterns (paper Fig 8/9, Fig 11, Fig 12).
 *
 * Given two adjacent units, these schedules make every occupant of one
 * unit meet every occupant of the other while keeping each unit's
 * occupant set invariant (the property that lets unit-level patterns
 * compose, §3.1).
 *
 * Three variants cover the papers' architectures:
 *  - striped_bipartite: units with internal couplers and aligned cross
 *    links on some (grid: all, hexagon: alternating) rows. Each round
 *    computes on the live cross links, then counter-rotates the two
 *    units with intra-unit odd/even swap layers (Fig 9 generalized).
 *  - sycamore_bipartite: units with no internal couplers, joined by a
 *    zig-zag line (Fig 10(b)). Intra-unit swap layers are emulated by
 *    3-layer block exchanges along the zig-zag path, reproducing the
 *    2D-grid swap layer's net permutation (App. B's "virtual SWAP").
 */
#ifndef PERMUQ_ATA_BIPARTITE_PATTERN_H
#define PERMUQ_ATA_BIPARTITE_PATTERN_H

#include <vector>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/**
 * Bipartite ATA between two equally sized units whose i-th elements
 * may be cross-linked and whose consecutive elements are coupled
 * within each unit. Cross links are discovered from @p device, so the
 * same generator serves the 2D grid (all rows linked; completes in
 * ~2N layers) and the hexagon brick wall (alternating rows linked;
 * ~4N layers).
 */
SwapSchedule striped_bipartite(const arch::CouplingGraph& device,
                               const std::vector<PhysicalQubit>& unit_a,
                               const std::vector<PhysicalQubit>& unit_b);

/**
 * Bipartite ATA between two adjacent Sycamore units (no intra-unit
 * couplers; the induced subgraph on the two units is a zig-zag path).
 */
SwapSchedule sycamore_bipartite(const arch::CouplingGraph& device,
                                const std::vector<PhysicalQubit>& unit_a,
                                const std::vector<PhysicalQubit>& unit_b);

/**
 * Exchange the occupants of two adjacent units wholesale (the unit-
 * level "SWAP" of §3.1). Grid/Sycamore: one layer of aligned swaps.
 * Hexagon: a 4-layer conjugation that routes the unlinked rows through
 * their linked neighbors (plus a 3-layer fix-up for an odd leftover
 * row). The generator asserts the net permutation is the exchange.
 */
SwapSchedule unit_exchange(const arch::CouplingGraph& device,
                           const std::vector<PhysicalQubit>& unit_a,
                           const std::vector<PhysicalQubit>& unit_b);

} // namespace permuq::ata

#endif // PERMUQ_ATA_BIPARTITE_PATTERN_H
