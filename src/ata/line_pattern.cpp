#include "line_pattern.h"

#include "ata/pattern_builder.h"
#include "common/error.h"

namespace permuq::ata {

namespace {

/** Emit one compute layer on pairs (i, i+1), i stepping by 2 from
 *  @p start. Returns true once all pairs have met. */
bool
compute_layer(PatternBuilder& b, std::int32_t start)
{
    for (std::int32_t i = start; i + 1 < b.size(); i += 2)
        b.compute_if_new(i, i + 1);
    return b.all_met();
}

/** Emit one swap layer on pairs (i, i+1), i stepping by 2 from
 *  @p start. */
void
swap_layer(PatternBuilder& b, std::int32_t start)
{
    for (std::int32_t i = start; i + 1 < b.size(); i += 2)
        b.swap(i, i + 1);
}

PatternBuilder
run_line(const std::vector<PhysicalQubit>& path)
{
    PatternBuilder b(path);
    std::int32_t n = b.size();
    if (n < 2)
        return b;
    // Repeating block: compute even, compute odd, swap odd, swap even
    // (Fig 7, with the two compute layers adjacent so that every swap
    // merges with a neighbouring compute under gate unification).
    for (std::int32_t round = 0; round <= n + 2; ++round) {
        if (compute_layer(b, 0))
            return b;
        if (compute_layer(b, 1))
            return b;
        swap_layer(b, 1);
        swap_layer(b, 0);
    }
    throw PanicError("line pattern failed to converge");
}

} // namespace

SwapSchedule
line_pattern(const std::vector<PhysicalQubit>& path)
{
    return run_line(path).take_schedule();
}

SwapSchedule
line_pattern_with_reversal(const std::vector<PhysicalQubit>& path)
{
    PatternBuilder b = run_line(path);
    std::int32_t n = b.size();
    if (n < 2)
        return b.take_schedule();
    auto reversed = [&] {
        for (std::int32_t i = 0; i < n; ++i)
            if (b.occupant(i) != n - 1 - i)
                return false;
        return true;
    };
    // Continue the block's swap-layer cycle until the arrangement is
    // the exact reversal (at most a handful of layers).
    for (std::int32_t extra = 0; extra < 8; ++extra) {
        if (reversed())
            return b.take_schedule();
        swap_layer(b, 1);
        if (reversed())
            return b.take_schedule();
        swap_layer(b, 0);
    }
    throw PanicError("line pattern reversal failed to converge");
}

} // namespace permuq::ata
