/**
 * @file
 * Clique schedule for 3D lattices (paper Fig 13). See the .cpp for the
 * plane-level recursion.
 */
#ifndef PERMUQ_ATA_LATTICE3D_PATTERN_H
#define PERMUQ_ATA_LATTICE3D_PATTERN_H

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"

namespace permuq::ata {

/** All-to-all schedule over the full 3D lattice. */
SwapSchedule lattice3d_ata(const arch::CouplingGraph& device);

} // namespace permuq::ata

#endif // PERMUQ_ATA_LATTICE3D_PATTERN_H
