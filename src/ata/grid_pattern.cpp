/**
 * @file
 * The optimized 2D-grid clique pattern (paper Appendix A).
 *
 * Optimization I: instead of finishing each adjacent unit pair's
 * bipartite ATA separately, all pairs progress *simultaneously* — at
 * every round each unit row performs intra-unit swaps at an offset
 * determined by (unit index + round) parity, so every adjacent pair
 * sees counter-rotating rows at once, and one compute layer per pair
 * parity fires on the vertical links. A round therefore costs three
 * layers (compute-even-pairs, compute-odd-pairs, swap) and advances
 * every pair, which is where the paper's 1.5N^2 bound comes from.
 *
 * Unit placements then follow the brick-style line pattern: once the
 * live adjacent pairs are covered, rows exchange at alternating
 * offsets and the simultaneous phase repeats. Intra-unit coverage runs
 * once at the end (all rows in parallel under ASAP replay).
 */
#include "grid_pattern.h"

#include "ata/line_pattern.h"
#include "ata/pattern_builder.h"
#include "common/error.h"

namespace permuq::ata {

SwapSchedule
grid_simultaneous_ata(const arch::CouplingGraph& device,
                      const std::vector<std::vector<PhysicalQubit>>& units)
{
    std::int32_t num_units = static_cast<std::int32_t>(units.size());
    fatal_unless(num_units >= 1, "need at least one unit");
    std::size_t width = units[0].size();
    for (const auto& unit : units)
        fatal_unless(unit.size() == width, "units must have equal size");

    SwapSchedule out;
    if (num_units == 1 || width == 0) {
        for (const auto& unit : units)
            out.append(line_pattern(unit));
        return out;
    }

    // Dense indexing: unit u, element e -> u * width + e.
    std::vector<PhysicalQubit> positions;
    positions.reserve(static_cast<std::size_t>(num_units) * width);
    for (const auto& unit : units)
        positions.insert(positions.end(), unit.begin(), unit.end());
    PatternBuilder b(std::move(positions));
    auto dense = [&](std::int32_t u, std::int32_t e) {
        return u * static_cast<std::int32_t>(width) + e;
    };

    // Validate structure once: vertical links between adjacent units,
    // horizontal links within units.
    for (std::int32_t u = 0; u < num_units; ++u) {
        for (std::int32_t e = 0;
             e < static_cast<std::int32_t>(width); ++e) {
            if (e + 1 < static_cast<std::int32_t>(width))
                fatal_unless(
                    device.coupled(units[static_cast<std::size_t>(u)]
                                        [static_cast<std::size_t>(e)],
                                   units[static_cast<std::size_t>(u)]
                                        [static_cast<std::size_t>(e + 1)]),
                    "grid unit is not an internal path");
            if (u + 1 < num_units)
                fatal_unless(
                    device.coupled(units[static_cast<std::size_t>(u)]
                                        [static_cast<std::size_t>(e)],
                                   units[static_cast<std::size_t>(u + 1)]
                                        [static_cast<std::size_t>(e)]),
                    "grid units are not vertically aligned");
        }
    }

    // slot_occupant[s] = original unit at row slot s; unit-pair met
    // matrix over original unit ids.
    std::vector<std::int32_t> slot_occupant(
        static_cast<std::size_t>(num_units));
    for (std::int32_t s = 0; s < num_units; ++s)
        slot_occupant[static_cast<std::size_t>(s)] = s;
    std::vector<bool> unit_met(
        static_cast<std::size_t>(num_units) *
            static_cast<std::size_t>(num_units),
        false);
    std::int64_t met_count = 0;
    const std::int64_t want =
        static_cast<std::int64_t>(num_units) * (num_units - 1) / 2;
    auto pair_met = [&](std::int32_t s) -> bool {
        std::int32_t u = slot_occupant[static_cast<std::size_t>(s)];
        std::int32_t v = slot_occupant[static_cast<std::size_t>(s + 1)];
        return unit_met[static_cast<std::size_t>(u) * num_units + v];
    };
    auto mark_pair = [&](std::int32_t s) {
        std::int32_t u = slot_occupant[static_cast<std::size_t>(s)];
        std::int32_t v = slot_occupant[static_cast<std::size_t>(s + 1)];
        if (!unit_met[static_cast<std::size_t>(u) * num_units + v]) {
            unit_met[static_cast<std::size_t>(u) * num_units + v] = true;
            unit_met[static_cast<std::size_t>(v) * num_units + u] = true;
            ++met_count;
        }
    };

    // Simultaneous bipartite phase: all live adjacent pairs progress
    // together. A unit pair is complete once width^2 distinct cross
    // meetings have accumulated; fresh meetings are counted as the
    // compute slots emit (cross meets can only happen on the vertical
    // links of the pair currently holding those units, so counting at
    // emission is exact even across repeated adjacencies).
    std::vector<std::int64_t> cross_count(
        static_cast<std::size_t>(num_units) *
            static_cast<std::size_t>(num_units),
        0);
    const std::int64_t cross_want =
        static_cast<std::int64_t>(width) * static_cast<std::int64_t>(width);
    auto simultaneous_phase = [&] {
        std::int64_t cap =
            8 * static_cast<std::int64_t>(width) + 24;
        for (std::int64_t round = 0; round <= cap; ++round) {
            bool all_done = true;
            // Compute layers: even pairs then odd pairs.
            for (std::int32_t parity = 0; parity < 2; ++parity)
                for (std::int32_t s = parity; s + 1 < num_units; s += 2)
                    if (!pair_met(s)) {
                        std::int32_t u = slot_occupant[
                            static_cast<std::size_t>(s)];
                        std::int32_t v = slot_occupant[
                            static_cast<std::size_t>(s + 1)];
                        auto& count = cross_count[
                            static_cast<std::size_t>(std::min(u, v)) *
                                num_units +
                            std::max(u, v)];
                        for (std::int32_t e = 0;
                             e < static_cast<std::int32_t>(width); ++e)
                            if (b.compute_if_new(dense(s, e),
                                                 dense(s + 1, e)))
                                ++count;
                        if (count == cross_want)
                            mark_pair(s);
                        else
                            all_done = false;
                    }
            if (all_done)
                return;
            // Global intra-unit swap layer: unit at slot s swaps at
            // offset (s + round) % 2, so every adjacent pair counter-
            // rotates.
            for (std::int32_t s = 0; s < num_units; ++s) {
                std::int32_t offset =
                    static_cast<std::int32_t>((s + round) % 2);
                for (std::int32_t e = offset;
                     e + 1 < static_cast<std::int32_t>(width); e += 2)
                    b.swap(dense(s, e), dense(s, e + 1));
            }
        }
        throw PanicError("grid simultaneous phase failed to converge");
    };

    for (std::int32_t placement = 0; placement <= num_units + 2;
         ++placement) {
        simultaneous_phase();
        if (met_count == want)
            break;
        // Two consecutive unit-exchange layers (S_odd then S_even, two
        // physical layers of aligned vertical swaps): both pair
        // parities then face fresh partners in the next phase, which
        // is what cuts the number of placements to ~num_units/2
        // (App. A's time-complexity argument).
        for (std::int32_t offset : {1, 0}) {
            for (std::int32_t s = offset; s + 1 < num_units; s += 2) {
                for (std::int32_t e = 0;
                     e < static_cast<std::int32_t>(width); ++e)
                    b.swap(dense(s, e), dense(s + 1, e));
                std::swap(slot_occupant[static_cast<std::size_t>(s)],
                          slot_occupant[static_cast<std::size_t>(s + 1)]);
            }
        }
    }
    panic_unless(met_count == want,
                 "grid unit placements failed to converge");

    // Intra-unit all-to-all: unit sets are row-invariant throughout
    // (intra swaps and wholesale exchanges only), so one line pattern
    // per row slot at the end covers them; disjoint rows run in
    // parallel under ASAP replay.
    SwapSchedule sched = b.take_schedule();
    for (const auto& unit : units)
        sched.append(line_pattern(unit));
    return sched;
}

} // namespace permuq::ata
