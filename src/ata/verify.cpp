#include "verify.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "common/error.h"

namespace permuq::ata {

namespace {

/** Dense re-indexing of an allowed position set. */
struct PositionIndex
{
    std::vector<PhysicalQubit> positions; // dense -> physical
    std::vector<std::int32_t> dense_of;   // physical -> dense or -1

    PositionIndex(const arch::CouplingGraph& device,
                  const std::vector<PhysicalQubit>& selected)
    {
        if (selected.empty()) {
            positions.resize(
                static_cast<std::size_t>(device.num_qubits()));
            for (std::int32_t i = 0; i < device.num_qubits(); ++i)
                positions[static_cast<std::size_t>(i)] = i;
        } else {
            positions = selected;
        }
        dense_of.assign(static_cast<std::size_t>(device.num_qubits()), -1);
        for (std::size_t i = 0; i < positions.size(); ++i) {
            PhysicalQubit p = positions[i];
            fatal_unless(p >= 0 && p < device.num_qubits(),
                         "position out of device range");
            fatal_unless(dense_of[static_cast<std::size_t>(p)] == -1,
                         "duplicate position in selection");
            dense_of[static_cast<std::size_t>(p)] =
                static_cast<std::int32_t>(i);
        }
    }

    std::int32_t
    size() const
    {
        return static_cast<std::int32_t>(positions.size());
    }
};

/** Pair-met tracker over k dense occupant ids. */
class MeetMatrix
{
  public:
    explicit MeetMatrix(std::int32_t k)
        : k_(k), met_(static_cast<std::size_t>(k) * k, false)
    {
    }

    bool
    met(std::int32_t u, std::int32_t v) const
    {
        return met_[static_cast<std::size_t>(u) * k_ +
                    static_cast<std::size_t>(v)];
    }

    void
    mark(std::int32_t u, std::int32_t v)
    {
        met_[static_cast<std::size_t>(u) * k_ +
             static_cast<std::size_t>(v)] = true;
        met_[static_cast<std::size_t>(v) * k_ +
             static_cast<std::size_t>(u)] = true;
    }

  private:
    std::size_t k_;
    std::vector<bool> met_;
};

/** Walk a schedule, tracking dense occupants; returns false + error on
 *  a structural problem. */
bool
simulate(const arch::CouplingGraph& device, const SwapSchedule& sched,
         const PositionIndex& index, std::vector<std::int32_t>& occupant,
         MeetMatrix* meets, std::int64_t* duplicate_meets,
         std::string* error)
{
    for (const auto& slot : sched.slots) {
        std::int32_t dp =
            slot.p >= 0 && slot.p < device.num_qubits()
                ? index.dense_of[static_cast<std::size_t>(slot.p)]
                : -1;
        std::int32_t dq =
            slot.q >= 0 && slot.q < device.num_qubits()
                ? index.dense_of[static_cast<std::size_t>(slot.q)]
                : -1;
        if (dp < 0 || dq < 0 || dp == dq) {
            std::ostringstream os;
            os << "slot touches position outside the region: (" << slot.p
               << "," << slot.q << ")";
            *error = os.str();
            return false;
        }
        if (!device.coupled(slot.p, slot.q)) {
            std::ostringstream os;
            os << "slot on non-coupler (" << slot.p << "," << slot.q
               << ")";
            *error = os.str();
            return false;
        }
        auto& ou = occupant[static_cast<std::size_t>(dp)];
        auto& ov = occupant[static_cast<std::size_t>(dq)];
        if (slot.kind == Slot::Kind::Compute) {
            if (meets != nullptr) {
                if (meets->met(ou, ov) && duplicate_meets != nullptr)
                    ++*duplicate_meets;
                meets->mark(ou, ov);
            }
        } else {
            std::swap(ou, ov);
        }
    }
    return true;
}

} // namespace

CoverageReport
verify_coverage(const arch::CouplingGraph& device, const SwapSchedule& sched,
                const std::vector<PhysicalQubit>& positions)
{
    CoverageReport report;
    PositionIndex index(device, positions);
    std::int32_t k = index.size();
    std::vector<std::int32_t> occupant(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i)
        occupant[static_cast<std::size_t>(i)] = i;
    MeetMatrix meets(k);
    if (!simulate(device, sched, index, occupant, &meets,
                  &report.duplicate_meets, &report.error))
        return report;
    for (std::int32_t u = 0; u < k; ++u)
        for (std::int32_t v = u + 1; v < k; ++v)
            if (!meets.met(u, v))
                report.missing.emplace_back(u, v);
    report.ok = report.missing.empty();
    return report;
}

CoverageReport
verify_bipartite_coverage(const arch::CouplingGraph& device,
                          const SwapSchedule& sched,
                          const std::vector<PhysicalQubit>& side_a,
                          const std::vector<PhysicalQubit>& side_b)
{
    CoverageReport report;
    std::vector<PhysicalQubit> all = side_a;
    all.insert(all.end(), side_b.begin(), side_b.end());
    PositionIndex index(device, all);
    std::int32_t k = index.size();
    std::vector<std::int32_t> occupant(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i)
        occupant[static_cast<std::size_t>(i)] = i;
    MeetMatrix meets(k);
    if (!simulate(device, sched, index, occupant, &meets,
                  &report.duplicate_meets, &report.error))
        return report;
    std::int32_t na = static_cast<std::int32_t>(side_a.size());
    for (std::int32_t u = 0; u < na; ++u)
        for (std::int32_t v = na; v < k; ++v)
            if (!meets.met(u, v))
                report.missing.emplace_back(u, v);
    report.ok = report.missing.empty();
    return report;
}

std::int64_t
complete_missing_pairs(const arch::CouplingGraph& device,
                       SwapSchedule& sched,
                       const std::vector<PhysicalQubit>& positions)
{
    PositionIndex index(device, positions);
    std::int32_t k = index.size();

    // Replay the existing schedule to obtain the final occupancy and
    // the met matrix.
    std::vector<std::int32_t> occupant(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i)
        occupant[static_cast<std::size_t>(i)] = i;
    MeetMatrix meets(k);
    std::string error;
    panic_unless(simulate(device, sched, index, occupant, &meets, nullptr,
                          &error),
                 "cannot complete a structurally invalid schedule: " +
                     error);

    // position_of[occ] inverse of occupant.
    std::vector<std::int32_t> position_of(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i)
        position_of[static_cast<std::size_t>(
            occupant[static_cast<std::size_t>(i)])] = i;

    // Restricted BFS from a dense position to another.
    auto bfs_path = [&](std::int32_t from, std::int32_t to) {
        std::vector<std::int32_t> prev(static_cast<std::size_t>(k), -2);
        std::deque<std::int32_t> queue;
        prev[static_cast<std::size_t>(from)] = -1;
        queue.push_back(from);
        while (!queue.empty()) {
            std::int32_t d = queue.front();
            queue.pop_front();
            if (d == to)
                break;
            PhysicalQubit phys = index.positions[static_cast<std::size_t>(d)];
            for (PhysicalQubit nb : device.connectivity().neighbors(phys)) {
                std::int32_t dn =
                    index.dense_of[static_cast<std::size_t>(nb)];
                if (dn >= 0 && prev[static_cast<std::size_t>(dn)] == -2) {
                    prev[static_cast<std::size_t>(dn)] = d;
                    queue.push_back(dn);
                }
            }
        }
        std::vector<std::int32_t> path;
        std::int32_t cur = to;
        panic_unless(prev[static_cast<std::size_t>(cur)] != -2,
                     "region is disconnected; cannot complete coverage");
        while (cur != -1) {
            path.push_back(cur);
            cur = prev[static_cast<std::size_t>(cur)];
        }
        std::reverse(path.begin(), path.end());
        return path; // from ... to (dense positions)
    };

    std::int64_t completed = 0;
    for (std::int32_t u = 0; u < k; ++u) {
        for (std::int32_t v = u + 1; v < k; ++v) {
            if (meets.met(u, v))
                continue;
            // Route occupant u toward occupant v, then compute.
            std::int32_t pu = position_of[static_cast<std::size_t>(u)];
            std::int32_t pv = position_of[static_cast<std::size_t>(v)];
            auto path = bfs_path(pu, pv);
            // Swap u along the path until adjacent to pv.
            for (std::size_t step = 0; step + 2 < path.size(); ++step) {
                std::int32_t a = path[step], b = path[step + 1];
                sched.swap(index.positions[static_cast<std::size_t>(a)],
                           index.positions[static_cast<std::size_t>(b)]);
                std::swap(occupant[static_cast<std::size_t>(a)],
                          occupant[static_cast<std::size_t>(b)]);
                position_of[static_cast<std::size_t>(
                    occupant[static_cast<std::size_t>(a)])] = a;
                position_of[static_cast<std::size_t>(
                    occupant[static_cast<std::size_t>(b)])] = b;
            }
            std::int32_t last =
                path.size() >= 2 ? path[path.size() - 2] : path[0];
            sched.compute(index.positions[static_cast<std::size_t>(last)],
                          index.positions[static_cast<std::size_t>(pv)]);
            meets.mark(occupant[static_cast<std::size_t>(last)],
                       occupant[static_cast<std::size_t>(pv)]);
            ++completed;
        }
    }
    return completed;
}

} // namespace permuq::ata
