/**
 * @file
 * Schedule replay: turn a position-level ATA schedule into a compiled
 * circuit for a concrete problem graph and qubit mapping (§5.2).
 *
 * Compute slots whose current logical pair is an unexecuted problem
 * edge emit a computation gate; all other compute slots are skipped.
 * Swap slots are followed verbatim, except that (optionally) a swap is
 * dropped when both occupants are "dead" — neither has any remaining
 * gate — which cannot affect any future meeting. Replay stops as soon
 * as every problem edge has executed, so sparse problems terminate
 * early (the "skip" adaptation of the clique solution).
 */
#ifndef PERMUQ_ATA_REPLAY_H
#define PERMUQ_ATA_REPLAY_H

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "circuit/circuit.h"
#include "graph/graph.h"

namespace permuq::ata {

/** Options controlling replay behavior. */
struct ReplayOptions
{
    /** Stop as soon as no problem edge remains. */
    bool stop_early = true;
    /** Drop swaps whose two occupants both have no remaining gates. */
    bool skip_dead_swaps = true;
};

/**
 * Replay @p sched from @p initial, executing the edges of @p problem.
 * @param done optional bitmap over problem edge indices of gates that
 *        were already executed by a preceding (greedy) prefix; replayed
 *        edges are those not marked. The bitmap is not modified.
 * @return the compiled tail circuit (starts at @p initial).
 */
circuit::Circuit replay(const arch::CouplingGraph& device,
                        const graph::Graph& problem,
                        const circuit::Mapping& initial,
                        const SwapSchedule& sched,
                        const ReplayOptions& options = {},
                        const std::vector<bool>* done = nullptr);

} // namespace permuq::ata

#endif // PERMUQ_ATA_REPLAY_H
