/**
 * @file
 * The 1xUnit (line) all-to-all pattern (paper Fig 6/7).
 *
 * On an n-qubit path, repeating blocks of
 *   [compute even pairs, compute odd pairs, swap odd pairs, swap even
 *    pairs]
 * make every qubit neighbor to every other exactly once, using n
 * compute layers and n-2 swap layers (2n-2 cycles). This is the swap
 * network the paper's depth-optimal solver rediscovers on the 1x6
 * instance, and the building block of every larger pattern.
 */
#ifndef PERMUQ_ATA_LINE_PATTERN_H
#define PERMUQ_ATA_LINE_PATTERN_H

#include <vector>

#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/**
 * All-to-all schedule over an explicit path of physical positions
 * (consecutive entries must be coupled on the target device — the
 * generator itself is device-agnostic).
 */
SwapSchedule line_pattern(const std::vector<PhysicalQubit>& path);

/**
 * Like line_pattern but with two extra trailing swap layers so the
 * final arrangement is the exact reversal of the initial one
 * (paper Fig 6(b), dotted SWAPs). Used by tests and by compositions
 * that rely on the known final permutation.
 */
SwapSchedule line_pattern_with_reversal(
    const std::vector<PhysicalQubit>& path);

} // namespace permuq::ata

#endif // PERMUQ_ATA_LINE_PATTERN_H
