#include "unit_composition.h"

#include <unordered_map>

#include "ata/bipartite_pattern.h"
#include "ata/line_pattern.h"
#include "common/error.h"

namespace permuq::ata {

std::vector<PhysicalQubit>
induced_path(const arch::CouplingGraph& device,
             const std::vector<PhysicalQubit>& positions)
{
    std::int32_t k = static_cast<std::int32_t>(positions.size());
    if (k <= 1)
        return positions;
    std::unordered_map<PhysicalQubit, std::int32_t> dense;
    for (std::int32_t i = 0; i < k; ++i)
        dense.emplace(positions[static_cast<std::size_t>(i)], i);
    std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i) {
        for (PhysicalQubit nb : device.connectivity().neighbors(
                 positions[static_cast<std::size_t>(i)])) {
            auto it = dense.find(nb);
            if (it != dense.end() && it->second > i) {
                adj[static_cast<std::size_t>(i)].push_back(it->second);
                adj[static_cast<std::size_t>(it->second)].push_back(i);
            }
        }
    }
    std::int32_t start = -1;
    for (std::int32_t i = 0; i < k; ++i) {
        fatal_unless(adj[static_cast<std::size_t>(i)].size() <= 2,
                     "induced subgraph is not a path (degree > 2)");
        if (adj[static_cast<std::size_t>(i)].size() == 1)
            start = i;
    }
    fatal_unless(start >= 0, "induced subgraph has no path endpoint");
    std::vector<PhysicalQubit> path;
    path.reserve(static_cast<std::size_t>(k));
    std::int32_t prev = -1, cur = start;
    while (cur != -1) {
        path.push_back(positions[static_cast<std::size_t>(cur)]);
        std::int32_t next = -1;
        for (std::int32_t nb : adj[static_cast<std::size_t>(cur)])
            if (nb != prev)
                next = nb;
        prev = cur;
        cur = next;
    }
    fatal_unless(static_cast<std::int32_t>(path.size()) == k,
                 "induced subgraph is disconnected");
    return path;
}

SwapSchedule
unit_level_ata(const arch::CouplingGraph& device,
               const std::vector<std::vector<PhysicalQubit>>& units,
               arch::ArchKind kind)
{
    std::int32_t num_units = static_cast<std::int32_t>(units.size());
    fatal_unless(num_units >= 1, "need at least one unit");
    SwapSchedule out;

    // Unit-level met matrix; some pairs are pre-covered by the intra
    // phase (Sycamore covers two-unit blocks at once).
    std::vector<bool> unit_met(
        static_cast<std::size_t>(num_units) *
            static_cast<std::size_t>(num_units),
        false);
    auto met = [&](std::int32_t u, std::int32_t v) -> bool {
        return unit_met[static_cast<std::size_t>(u) * num_units +
                        static_cast<std::size_t>(v)];
    };
    auto mark = [&](std::int32_t u, std::int32_t v) {
        unit_met[static_cast<std::size_t>(u) * num_units +
                 static_cast<std::size_t>(v)] = true;
        unit_met[static_cast<std::size_t>(v) * num_units +
                 static_cast<std::size_t>(u)] = true;
    };

    // ---- Phase 1: intra-unit all-to-all ------------------------------
    if (kind == arch::ArchKind::Sycamore) {
        fatal_unless(num_units >= 2 || units[0].size() <= 1,
                     "a single Sycamore unit has no couplers");
        // A two-unit zig-zag line covers every pair inside the block,
        // so the block's unit pair is pre-met for phase 2 — but a later
        // block that reuses one of the slots rescrambles its occupant
        // set, invalidating any earlier mark on that slot.
        auto run_block = [&](std::int32_t u, std::int32_t v) {
            std::vector<PhysicalQubit> both =
                units[static_cast<std::size_t>(u)];
            both.insert(both.end(),
                        units[static_cast<std::size_t>(v)].begin(),
                        units[static_cast<std::size_t>(v)].end());
            out.append(line_pattern(induced_path(device, both)));
            for (std::int32_t w = 0; w < num_units; ++w) {
                if (met(u, w)) {
                    unit_met[static_cast<std::size_t>(u) * num_units + w] =
                        false;
                    unit_met[static_cast<std::size_t>(w) * num_units + u] =
                        false;
                }
                if (met(v, w)) {
                    unit_met[static_cast<std::size_t>(v) * num_units + w] =
                        false;
                    unit_met[static_cast<std::size_t>(w) * num_units + v] =
                        false;
                }
            }
            mark(u, v);
        };
        for (std::int32_t u = 0; u + 1 < num_units; u += 2)
            run_block(u, u + 1);
        if (num_units >= 2 && num_units % 2 == 1)
            run_block(num_units - 2, num_units - 1);
    } else if (num_units == 1) {
        for (const auto& unit : units)
            out.append(line_pattern(unit));
    }
    // Grid/hexagon intra-unit patterns are not emitted up front:
    // Optimization II (App. A.2) schedules them at the boundary slots
    // that idle during odd unit-compute layers, so they overlap with
    // the inter-unit phase under ASAP replay.
    if (num_units == 1)
        return out;

    // ---- Phase 2: unit-level line pattern ----------------------------
    // slot_occupant[s] = which original unit currently occupies slot s.
    // Occupant *sets* are invariant under both the bipartite patterns
    // (net intra-unit permutations) and unit exchanges, which is what
    // makes the line-pattern argument apply at unit level.
    std::vector<std::int32_t> slot_occupant(
        static_cast<std::size_t>(num_units));
    for (std::int32_t s = 0; s < num_units; ++s)
        slot_occupant[static_cast<std::size_t>(s)] = s;

    std::int64_t met_count = 0, want = 0;
    for (std::int32_t u = 0; u < num_units; ++u)
        for (std::int32_t v = u + 1; v < num_units; ++v) {
            ++want;
            if (met(u, v))
                ++met_count;
        }

    auto unit_compute = [&](std::int32_t s) {
        std::int32_t u = slot_occupant[static_cast<std::size_t>(s)];
        std::int32_t v = slot_occupant[static_cast<std::size_t>(s + 1)];
        if (met(u, v))
            return;
        const auto& a = units[static_cast<std::size_t>(s)];
        const auto& b = units[static_cast<std::size_t>(s + 1)];
        if (kind == arch::ArchKind::Sycamore)
            out.append(sycamore_bipartite(device, a, b));
        else
            out.append(striped_bipartite(device, a, b));
        mark(u, v);
        ++met_count;
    };
    auto unit_swap = [&](std::int32_t s) {
        out.append(unit_exchange(device,
                                 units[static_cast<std::size_t>(s)],
                                 units[static_cast<std::size_t>(s + 1)]));
        std::swap(slot_occupant[static_cast<std::size_t>(s)],
                  slot_occupant[static_cast<std::size_t>(s + 1)]);
    };

    // Optimization II (App. A.2): a unit's intra pattern runs when its
    // current slot idles during the odd compute stage (slots 0 and
    // num_units-1), overlapping with the inter-unit bipartites.
    bool deferred_intra = kind != arch::ArchKind::Sycamore;
    std::vector<bool> intra_done(static_cast<std::size_t>(num_units),
                                 !deferred_intra);
    auto intra_at_slot = [&](std::int32_t s) {
        std::int32_t u = slot_occupant[static_cast<std::size_t>(s)];
        if (intra_done[static_cast<std::size_t>(u)])
            return;
        out.append(line_pattern(units[static_cast<std::size_t>(s)]));
        intra_done[static_cast<std::size_t>(u)] = true;
    };
    auto finish_intra = [&] {
        for (std::int32_t s = 0; s < num_units; ++s)
            intra_at_slot(s);
    };

    for (std::int32_t round = 0; round <= num_units + 2; ++round) {
        for (std::int32_t s = 0; s + 1 < num_units; s += 2)
            unit_compute(s);
        if (met_count == want) {
            if (deferred_intra)
                finish_intra();
            return out;
        }
        if (deferred_intra) {
            intra_at_slot(0);
            if (num_units % 2 == 0)
                intra_at_slot(num_units - 1);
        }
        for (std::int32_t s = 1; s + 1 < num_units; s += 2)
            unit_compute(s);
        if (met_count == want) {
            if (deferred_intra)
                finish_intra();
            return out;
        }
        for (std::int32_t s = 1; s + 1 < num_units; s += 2)
            unit_swap(s);
        for (std::int32_t s = 0; s + 1 < num_units; s += 2)
            unit_swap(s);
    }
    throw PanicError("unit-level pattern failed to converge");
}

} // namespace permuq::ata
