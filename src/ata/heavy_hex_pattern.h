/**
 * @file
 * The IBM heavy-hex all-to-all pattern (paper §5.1, Fig 16, App. C).
 *
 * Heavy-hex is too sparse for a profitable unit decomposition, so the
 * paper runs the 1xUnit line pattern twice along the device's longest
 * path:
 *   pass 1 covers path-to-path pairs, interleaving path-to-off-path
 *   gates whenever a path node sits next to an off-path qubit;
 *   a swap layer then pulls every off-path qubit onto the path, and
 *   pass 2 covers off-to-off and the remaining path-to-off pairs.
 * The generator simulates coverage as it emits; any pair the two-pass
 * construction leaves uncovered (possible for some geometries) is
 * completed with explicit routed gates, so the returned schedule is
 * always a verified clique pattern.
 */
#ifndef PERMUQ_ATA_HEAVY_HEX_PATTERN_H
#define PERMUQ_ATA_HEAVY_HEX_PATTERN_H

#include <cstdint>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"

namespace permuq::ata {

/**
 * Clique schedule over the heavy-hex path interval
 * [@p path0, @p path1] (inclusive) plus the off-path qubits attached
 * inside it. The device must expose a longest path (heavy-hex or
 * line).
 */
SwapSchedule heavy_hex_pattern(const arch::CouplingGraph& device,
                               std::int32_t path0, std::int32_t path1);

} // namespace permuq::ata

#endif // PERMUQ_ATA_HEAVY_HEX_PATTERN_H
