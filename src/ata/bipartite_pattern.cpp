#include "bipartite_pattern.h"

#include <algorithm>

#include "ata/pattern_builder.h"
#include "common/error.h"

namespace permuq::ata {

namespace {

std::vector<PhysicalQubit>
concat(const std::vector<PhysicalQubit>& a,
       const std::vector<PhysicalQubit>& b)
{
    std::vector<PhysicalQubit> all = a;
    all.insert(all.end(), b.begin(), b.end());
    return all;
}

} // namespace

SwapSchedule
striped_bipartite(const arch::CouplingGraph& device,
                  const std::vector<PhysicalQubit>& unit_a,
                  const std::vector<PhysicalQubit>& unit_b)
{
    std::int32_t n = static_cast<std::int32_t>(unit_a.size());
    fatal_unless(n >= 1 && unit_b.size() == unit_a.size(),
                 "striped_bipartite requires equal, non-empty units");
    for (std::int32_t i = 0; i + 1 < n; ++i) {
        fatal_unless(device.coupled(unit_a[static_cast<std::size_t>(i)],
                                    unit_a[static_cast<std::size_t>(i + 1)]) &&
                         device.coupled(
                             unit_b[static_cast<std::size_t>(i)],
                             unit_b[static_cast<std::size_t>(i + 1)]),
                     "striped_bipartite units must be internal paths");
    }
    std::vector<std::int32_t> rungs;
    for (std::int32_t r = 0; r < n; ++r)
        if (device.coupled(unit_a[static_cast<std::size_t>(r)],
                           unit_b[static_cast<std::size_t>(r)]))
            rungs.push_back(r);
    fatal_unless(!rungs.empty(), "units share no aligned coupler");

    // Scheme 0 (Fig 9): counter-rotate — unit A swaps at offset s, unit
    // B at 1-s. Converges in ~n rounds on the grid (all rows are rungs)
    // and ~2n rounds on even-height hexagon pairs, but odd-length units
    // over striped rungs hit a parity lock. Scheme 1 breaks the lock by
    // letting unit A idle every fourth round (a phase slip), which was
    // found to cover all sizes and rung parities; it is only used when
    // scheme 0 fails, so the common cases keep the tight depth.
    for (std::int32_t scheme = 0; scheme < 2; ++scheme) {
        PatternBuilder b(concat(unit_a, unit_b));
        b.set_bipartite(n);
        std::int32_t s = 0;
        for (std::int32_t round = 0; round <= 8 * n + 24; ++round) {
            for (std::int32_t r : rungs)
                b.compute_if_new(r, n + r);
            if (b.bipartite_done())
                return b.take_schedule();
            bool a_idles = scheme == 1 && round % 4 == 3;
            if (!a_idles)
                for (std::int32_t i = s; i + 1 < n; i += 2)
                    b.swap(i, i + 1);
            for (std::int32_t i = 1 - s; i + 1 < n; i += 2)
                b.swap(n + i, n + i + 1);
            s ^= 1;
        }
    }
    throw PanicError("striped_bipartite failed to converge");
}

SwapSchedule
sycamore_bipartite(const arch::CouplingGraph& device,
                   const std::vector<PhysicalQubit>& unit_a,
                   const std::vector<PhysicalQubit>& unit_b)
{
    std::int32_t n = static_cast<std::int32_t>(unit_a.size());
    fatal_unless(n >= 1 && unit_b.size() == unit_a.size(),
                 "sycamore_bipartite requires equal, non-empty units");
    PatternBuilder b(concat(unit_a, unit_b));
    b.set_bipartite(n);
    std::int32_t k = 2 * n;
    if (n == 1) {
        fatal_unless(device.coupled(unit_a[0], unit_b[0]),
                     "degenerate sycamore units are not coupled");
        b.compute(0, 1);
        return b.take_schedule();
    }

    // Recover the zig-zag path: the induced subgraph on the two units
    // is a simple path (Fig 10(b)); walk it from a degree-1 endpoint.
    std::vector<std::vector<std::int32_t>> adj(
        static_cast<std::size_t>(k));
    auto phys = concat(unit_a, unit_b);
    for (std::int32_t i = 0; i < k; ++i)
        for (std::int32_t j = i + 1; j < k; ++j)
            if (device.coupled(phys[static_cast<std::size_t>(i)],
                               phys[static_cast<std::size_t>(j)])) {
                adj[static_cast<std::size_t>(i)].push_back(j);
                adj[static_cast<std::size_t>(j)].push_back(i);
            }
    std::int32_t start = -1;
    for (std::int32_t i = 0; i < k; ++i) {
        fatal_unless(adj[static_cast<std::size_t>(i)].size() <= 2,
                     "two-unit subgraph is not a path");
        if (adj[static_cast<std::size_t>(i)].size() == 1)
            start = i;
    }
    fatal_unless(start >= 0, "two-unit subgraph has no path endpoint");
    std::vector<std::int32_t> path; // dense indices in path order
    path.reserve(static_cast<std::size_t>(k));
    std::int32_t prev = -1, cur = start;
    while (cur != -1) {
        path.push_back(cur);
        std::int32_t next = -1;
        for (std::int32_t nb : adj[static_cast<std::size_t>(cur)])
            if (nb != prev)
                next = nb;
        prev = cur;
        cur = next;
    }
    fatal_unless(static_cast<std::int32_t>(path.size()) == k,
                 "two-unit subgraph path does not cover both units");

    // Path indices of each side, in path order (must be arithmetic
    // with step 2 because the zig-zag alternates sides).
    std::vector<std::int32_t> a_idx, b_idx;
    for (std::int32_t i = 0; i < k; ++i) {
        if (path[static_cast<std::size_t>(i)] < n)
            a_idx.push_back(i);
        else
            b_idx.push_back(i);
    }
    for (std::size_t t = 1; t < a_idx.size(); ++t)
        fatal_unless(a_idx[t] == a_idx[t - 1] + 2,
                     "zig-zag does not alternate sides");

    auto dense_at = [&](std::int32_t path_index) {
        return path[static_cast<std::size_t>(path_index)];
    };

    std::int32_t s = 0;
    for (std::int32_t round = 0; round <= 2 * n + 8; ++round) {
        // Compute layer: even path edges are exactly the aligned cross
        // links (A_c, B_c).
        for (std::int32_t c = 0; c + 1 < k; c += 2)
            b.compute_if_new(dense_at(c), dense_at(c + 1));
        if (b.bipartite_done())
            return b.take_schedule();

        // Virtual swap: reproduce [A swaps offset s | B swaps offset
        // 1-s] as distance-2 transpositions along the path, grouped
        // into disjoint 3- or 4-position segments, 3 layers total.
        std::vector<std::int32_t> lefts;
        for (std::size_t i = static_cast<std::size_t>(s);
             i + 1 < a_idx.size(); i += 2)
            lefts.push_back(a_idx[i]);
        for (std::size_t i = static_cast<std::size_t>(1 - s);
             i + 1 < b_idx.size(); i += 2)
            lefts.push_back(b_idx[i]);
        std::sort(lefts.begin(), lefts.end());

        struct Segment
        {
            std::int32_t left;
            bool paired;
        };
        std::vector<Segment> segments;
        for (std::size_t i = 0; i < lefts.size();) {
            if (i + 1 < lefts.size() && lefts[i + 1] == lefts[i] + 1) {
                segments.push_back({lefts[i], true});
                i += 2;
            } else {
                segments.push_back({lefts[i], false});
                i += 1;
            }
        }
        // Layer 1.
        for (const auto& seg : segments) {
            if (seg.paired)
                b.swap(dense_at(seg.left + 1), dense_at(seg.left + 2));
            else
                b.swap(dense_at(seg.left), dense_at(seg.left + 1));
        }
        // Layer 2.
        for (const auto& seg : segments) {
            if (seg.paired) {
                b.swap(dense_at(seg.left), dense_at(seg.left + 1));
                b.swap(dense_at(seg.left + 2), dense_at(seg.left + 3));
            } else {
                b.swap(dense_at(seg.left + 1), dense_at(seg.left + 2));
            }
        }
        // Layer 3.
        for (const auto& seg : segments) {
            if (seg.paired)
                b.swap(dense_at(seg.left + 1), dense_at(seg.left + 2));
            else
                b.swap(dense_at(seg.left), dense_at(seg.left + 1));
        }
        s ^= 1;
    }
    throw PanicError("sycamore_bipartite failed to converge");
}

SwapSchedule
unit_exchange(const arch::CouplingGraph& device,
              const std::vector<PhysicalQubit>& unit_a,
              const std::vector<PhysicalQubit>& unit_b)
{
    std::int32_t n = static_cast<std::int32_t>(unit_a.size());
    fatal_unless(n >= 1 && unit_b.size() == unit_a.size(),
                 "unit_exchange requires equal, non-empty units");
    PatternBuilder b(concat(unit_a, unit_b));

    std::vector<bool> linked(static_cast<std::size_t>(n));
    bool all_linked = true;
    for (std::int32_t r = 0; r < n; ++r) {
        linked[static_cast<std::size_t>(r)] =
            device.coupled(unit_a[static_cast<std::size_t>(r)],
                           unit_b[static_cast<std::size_t>(r)]);
        all_linked = all_linked && linked[static_cast<std::size_t>(r)];
    }

    auto tau = [&](auto&& pred) {
        for (std::int32_t r = 0; r < n; ++r)
            if (pred(r))
                b.swap(r, n + r);
    };
    auto sigma = [&] {
        for (std::int32_t r = 0; r + 1 < n - (n % 2); r += 2) {
            b.swap(r, r + 1);
            b.swap(n + r, n + r + 1);
        }
    };

    if (all_linked) {
        // Grid / Sycamore: aligned vertical couplers; one swap layer.
        tau([](std::int32_t) { return true; });
    } else {
        // Hexagon brick wall: rows alternate linked/unlinked. Cross the
        // linked rows, rotate pairs so the unlinked contents reach a
        // linked row, cross again, rotate back.
        auto is_linked = [&](std::int32_t r) {
            return linked[static_cast<std::size_t>(r)];
        };
        tau(is_linked);
        sigma();
        tau(is_linked);
        sigma();
        if (n % 2 == 1) {
            std::int32_t last = n - 1;
            if (linked[static_cast<std::size_t>(last)]) {
                b.swap(last, n + last);
            } else {
                panic_unless(n >= 2 &&
                                 linked[static_cast<std::size_t>(last - 1)],
                             "hexagon rows do not alternate links");
                b.swap(last - 1, last);
                b.swap(n + last - 1, n + last);
                b.swap(last - 1, n + last - 1);
                b.swap(last - 1, last);
                b.swap(n + last - 1, n + last);
            }
        }
    }

    // Self-check: the net permutation must be the exact unit exchange.
    for (std::int32_t r = 0; r < n; ++r) {
        panic_unless(b.occupant(r) == n + r && b.occupant(n + r) == r,
                     "unit_exchange did not produce the exchange");
    }
    return b.take_schedule();
}

} // namespace permuq::ata
