/**
 * @file
 * Structural verification of ATA schedules.
 *
 * A schedule is a correct all-to-all pattern for a device iff
 *   (1) every slot lies on a coupler of the device, and
 *   (2) replaying it meets every pair of initial occupants at a
 *       compute slot at least once (logical coverage).
 * Pattern generators in this module are *checked*, not trusted: the
 * test suite runs this verifier over every architecture and size.
 */
#ifndef PERMUQ_ATA_VERIFY_H
#define PERMUQ_ATA_VERIFY_H

#include <string>
#include <vector>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/** Outcome of verifying one schedule. */
struct CoverageReport
{
    bool ok = false;
    /** Initial-occupant pairs never met at a compute slot. */
    std::vector<VertexPair> missing;
    /** First structural problem found, empty if none. */
    std::string error;
    /** Number of compute slots that touched an already-met pair. */
    std::int64_t duplicate_meets = 0;
};

/**
 * Verify @p sched provides all-to-all coverage over @p positions of
 * @p device (all device positions if @p positions is empty). Slots may
 * only touch the given positions.
 */
CoverageReport verify_coverage(const arch::CouplingGraph& device,
                               const SwapSchedule& sched,
                               const std::vector<PhysicalQubit>& positions = {});

/**
 * Verify bipartite coverage: every occupant initially in @p side_a
 * meets every occupant initially in @p side_b. Slots may touch any
 * position in side_a ∪ side_b.
 */
CoverageReport verify_bipartite_coverage(
    const arch::CouplingGraph& device, const SwapSchedule& sched,
    const std::vector<PhysicalQubit>& side_a,
    const std::vector<PhysicalQubit>& side_b);

/**
 * Append greedy completion slots to @p sched so that all missing
 * pairs of @p report get met: for each missing pair, route one
 * endpoint's occupant toward the other along a shortest path with
 * SWAPs, then compute. Used as a checked safety net by generators
 * whose constructions are heuristic (heavy-hex two-pass, §5.1).
 * @return number of pairs completed this way.
 */
std::int64_t complete_missing_pairs(const arch::CouplingGraph& device,
                                    SwapSchedule& sched,
                                    const std::vector<PhysicalQubit>& positions = {});

} // namespace permuq::ata

#endif // PERMUQ_ATA_VERIFY_H
