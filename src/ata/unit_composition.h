/**
 * @file
 * Internal: the unit-level composition that turns 1xUnit + 2xUnit
 * solutions into a full-device clique schedule (paper §3.1).
 *
 * Units are treated as super-nodes on a line. A unit-level line
 * pattern (compute = 2xUnit bipartite ATA, swap = wholesale unit
 * exchange) makes every unit meet every other; an intra phase covers
 * pairs inside each unit (directly for architectures with intra-unit
 * couplers, via the two-unit zig-zag line for Sycamore).
 */
#ifndef PERMUQ_ATA_UNIT_COMPOSITION_H
#define PERMUQ_ATA_UNIT_COMPOSITION_H

#include <vector>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/**
 * Clique schedule over the positions of @p units on @p device.
 * @param kind selects the 2xUnit flavour (Grid/Hexagon use
 *        striped_bipartite, Sycamore uses sycamore_bipartite) and the
 *        intra-unit strategy.
 */
SwapSchedule unit_level_ata(
    const arch::CouplingGraph& device,
    const std::vector<std::vector<PhysicalQubit>>& units,
    arch::ArchKind kind);

/**
 * Order the induced subgraph on @p positions as a simple path; fatal
 * if it is not one. Used for Sycamore two-unit zig-zags.
 */
std::vector<PhysicalQubit> induced_path(
    const arch::CouplingGraph& device,
    const std::vector<PhysicalQubit>& positions);

} // namespace permuq::ata

#endif // PERMUQ_ATA_UNIT_COMPOSITION_H
