/**
 * @file
 * Optimized 2D-grid clique pattern (paper Appendix A, Optimizations I
 * and II): simultaneous adjacent-pair bipartites with globally
 * consistent counter-rotation, giving the ~1.5 N^2 depth law.
 */
#ifndef PERMUQ_ATA_GRID_PATTERN_H
#define PERMUQ_ATA_GRID_PATTERN_H

#include <vector>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/**
 * Clique schedule over a rectangular block of aligned units (grid rows
 * with vertical couplers at every column and intra-row couplers).
 */
SwapSchedule grid_simultaneous_ata(
    const arch::CouplingGraph& device,
    const std::vector<std::vector<PhysicalQubit>>& units);

} // namespace permuq::ata

#endif // PERMUQ_ATA_GRID_PATTERN_H
