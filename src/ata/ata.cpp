#include "ata.h"

#include <algorithm>
#include <unordered_map>

#include "ata/grid_pattern.h"
#include "ata/heavy_hex_pattern.h"
#include "ata/lattice3d_pattern.h"
#include "ata/line_pattern.h"
#include "ata/unit_composition.h"
#include "common/error.h"

namespace permuq::ata {

namespace {

bool
uses_path(arch::ArchKind kind)
{
    return kind == arch::ArchKind::Line || kind == arch::ArchKind::HeavyHex;
}

/** Clamp to device bounds and widen degenerate regions that the
 *  pattern generators cannot handle (a single Sycamore unit has no
 *  couplers; a single hexagon row has no exchanges). */
Region
normalize_region(const arch::CouplingGraph& device, Region r)
{
    if (device.kind() == arch::ArchKind::Lattice3D) {
        // 3D regions are not sub-divided; always use the full device.
        r.unit0 = 0;
        r.unit1 = device.num_units() - 1;
        r.elem0 = 0;
        r.elem1 = static_cast<std::int32_t>(device.units()[0].size()) - 1;
        return r;
    }
    if (uses_path(device.kind())) {
        std::int32_t last =
            static_cast<std::int32_t>(device.longest_path().size()) - 1;
        r.path0 = std::clamp(r.path0, 0, last);
        r.path1 = std::clamp(r.path1, r.path0, last);
        return r;
    }
    std::int32_t num_units = device.num_units();
    fatal_unless(num_units > 0, "architecture has no unit decomposition");
    std::int32_t unit_len =
        static_cast<std::int32_t>(device.units()[0].size());
    r.unit0 = std::clamp(r.unit0, 0, num_units - 1);
    r.unit1 = std::clamp(r.unit1, r.unit0, num_units - 1);
    r.elem0 = std::clamp(r.elem0, 0, unit_len - 1);
    r.elem1 = std::clamp(r.elem1, r.elem0, unit_len - 1);

    auto widen = [](std::int32_t& lo, std::int32_t& hi, std::int32_t max) {
        if (lo == hi) {
            if (hi < max)
                ++hi;
            else if (lo > 0)
                --lo;
        }
    };
    if (device.kind() == arch::ArchKind::Sycamore)
        widen(r.unit0, r.unit1, num_units - 1);
    if (device.kind() == arch::ArchKind::Hexagon)
        widen(r.elem0, r.elem1, unit_len - 1);
    return r;
}

} // namespace

Region
full_region(const arch::CouplingGraph& device)
{
    Region r;
    if (uses_path(device.kind())) {
        r.path1 =
            static_cast<std::int32_t>(device.longest_path().size()) - 1;
        return r;
    }
    fatal_unless(device.num_units() > 0,
                 "architecture has no unit decomposition");
    r.unit1 = device.num_units() - 1;
    r.elem1 = static_cast<std::int32_t>(device.units()[0].size()) - 1;
    return r;
}

std::vector<PhysicalQubit>
region_positions(const arch::CouplingGraph& device, const Region& region)
{
    Region r = normalize_region(device, region);
    std::vector<PhysicalQubit> out;
    if (uses_path(device.kind())) {
        const auto& path = device.longest_path();
        for (std::int32_t i = r.path0; i <= r.path1; ++i)
            out.push_back(path[static_cast<std::size_t>(i)]);
        for (const auto& att : device.off_path())
            if (att.path_index >= r.path0 && att.path_index <= r.path1)
                out.push_back(att.off_qubit);
        return out;
    }
    for (std::int32_t u = r.unit0; u <= r.unit1; ++u) {
        const auto& unit = device.units()[static_cast<std::size_t>(u)];
        for (std::int32_t e = r.elem0; e <= r.elem1; ++e)
            out.push_back(unit[static_cast<std::size_t>(e)]);
    }
    return out;
}

std::int32_t
region_size(const arch::CouplingGraph& device, const Region& region)
{
    Region r = normalize_region(device, region);
    if (uses_path(device.kind())) {
        std::int32_t n = r.path1 - r.path0 + 1;
        for (const auto& att : device.off_path())
            if (att.path_index >= r.path0 && att.path_index <= r.path1)
                ++n;
        return n;
    }
    return (r.unit1 - r.unit0 + 1) * (r.elem1 - r.elem0 + 1);
}

SwapSchedule
ata_schedule(const arch::CouplingGraph& device, const Region& region)
{
    Region r = normalize_region(device, region);
    switch (device.kind()) {
      case arch::ArchKind::Line: {
        const auto& path = device.longest_path();
        std::vector<PhysicalQubit> slice(
            path.begin() + r.path0, path.begin() + r.path1 + 1);
        return line_pattern(slice);
      }
      case arch::ArchKind::HeavyHex:
        return heavy_hex_pattern(device, r.path0, r.path1);
      case arch::ArchKind::Grid:
      case arch::ArchKind::Sycamore:
      case arch::ArchKind::Hexagon: {
        std::vector<std::vector<PhysicalQubit>> sub_units;
        for (std::int32_t u = r.unit0; u <= r.unit1; ++u) {
            const auto& unit =
                device.units()[static_cast<std::size_t>(u)];
            sub_units.emplace_back(unit.begin() + r.elem0,
                                   unit.begin() + r.elem1 + 1);
        }
        if (device.kind() == arch::ArchKind::Grid)
            return grid_simultaneous_ata(device, sub_units);
        return unit_level_ata(device, sub_units, device.kind());
      }
      case arch::ArchKind::Lattice3D:
        return lattice3d_ata(device);
      case arch::ArchKind::Custom:
        break;
    }
    throw FatalError("ata_schedule: unsupported architecture kind: " +
                     arch::to_string(device.kind()));
}

SwapSchedule
full_ata_schedule(const arch::CouplingGraph& device)
{
    return ata_schedule(device, full_region(device));
}

Region
bounding_region(const arch::CouplingGraph& device,
                const std::vector<PhysicalQubit>& positions)
{
    fatal_unless(!positions.empty(), "bounding_region of empty set");
    Region r;
    if (device.kind() == arch::ArchKind::Lattice3D)
        return full_region(device);
    if (uses_path(device.kind())) {
        // Map every position to a path index (off-path qubits map to
        // their attachment).
        std::unordered_map<PhysicalQubit, std::int32_t> index;
        const auto& path = device.longest_path();
        for (std::size_t i = 0; i < path.size(); ++i)
            index.emplace(path[i], static_cast<std::int32_t>(i));
        for (const auto& att : device.off_path())
            index.emplace(att.off_qubit, att.path_index);
        std::int32_t lo = kUnreachable, hi = -1;
        for (PhysicalQubit p : positions) {
            auto it = index.find(p);
            fatal_unless(it != index.end(),
                         "position not on the path decomposition");
            lo = std::min(lo, it->second);
            hi = std::max(hi, it->second);
        }
        r.path0 = lo;
        r.path1 = hi;
        return normalize_region(device, r);
    }
    bool hexagon = device.kind() == arch::ArchKind::Hexagon;
    std::int32_t u_lo = kUnreachable, u_hi = -1;
    std::int32_t e_lo = kUnreachable, e_hi = -1;
    for (PhysicalQubit p : positions) {
        auto [row, col] = device.coordinates()[static_cast<std::size_t>(p)];
        std::int32_t u = hexagon ? col : row;
        std::int32_t e = hexagon ? row : col;
        u_lo = std::min(u_lo, u);
        u_hi = std::max(u_hi, u);
        e_lo = std::min(e_lo, e);
        e_hi = std::max(e_hi, e);
    }
    r.unit0 = u_lo;
    r.unit1 = u_hi;
    r.elem0 = e_lo;
    r.elem1 = e_hi;
    return normalize_region(device, r);
}

bool
regions_overlap(const arch::CouplingGraph& device, const Region& a,
                const Region& b)
{
    if (uses_path(device.kind()))
        return a.path0 <= b.path1 && b.path0 <= a.path1;
    return a.unit0 <= b.unit1 && b.unit0 <= a.unit1 &&
           a.elem0 <= b.elem1 && b.elem0 <= a.elem1;
}

Region
merge_regions(const Region& a, const Region& b)
{
    Region r;
    r.unit0 = std::min(a.unit0, b.unit0);
    r.unit1 = std::max(a.unit1, b.unit1);
    r.elem0 = std::min(a.elem0, b.elem0);
    r.elem1 = std::max(a.elem1, b.elem1);
    r.path0 = std::min(a.path0, b.path0);
    r.path1 = std::max(a.path1, b.path1);
    return r;
}

} // namespace permuq::ata
