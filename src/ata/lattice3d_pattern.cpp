/**
 * @file
 * All-to-all pattern for the 3D lattice (paper Fig 13): the multi-
 * dimensional recursion. The lattice is divided into z-planes; each
 * plane is a 2D grid handled by the unit-level composition, and the
 * planes themselves run a plane-level line pattern in which
 *   - a plane-level "compute" is a bipartite ATA between two adjacent
 *     planes, realized as a striped bipartite over the planes' snake
 *     paths (every position pair is vertically coupled, so all rungs
 *     are live and convergence matches the 2D grid case), and
 *   - a plane-level "swap" is a one-layer wholesale plane exchange.
 */
#include "lattice3d_pattern.h"

#include "ata/bipartite_pattern.h"
#include "ata/unit_composition.h"
#include "common/error.h"

namespace permuq::ata {

namespace {

/** Boustrophedon path through one plane's units (rows). */
std::vector<PhysicalQubit>
plane_snake(const std::vector<std::vector<PhysicalQubit>>& plane_units)
{
    std::vector<PhysicalQubit> snake;
    for (std::size_t y = 0; y < plane_units.size(); ++y) {
        const auto& row = plane_units[y];
        if (y % 2 == 0)
            snake.insert(snake.end(), row.begin(), row.end());
        else
            snake.insert(snake.end(), row.rbegin(), row.rend());
    }
    return snake;
}

} // namespace

SwapSchedule
lattice3d_ata(const arch::CouplingGraph& device)
{
    fatal_unless(device.kind() == arch::ArchKind::Lattice3D,
                 "lattice3d_ata requires a 3D lattice");
    std::int32_t nz = device.unit_groups();
    fatal_unless(nz >= 1 && device.num_units() % nz == 0,
                 "inconsistent plane decomposition");
    std::int32_t ny = device.num_units() / nz;

    std::vector<std::vector<std::vector<PhysicalQubit>>> planes(
        static_cast<std::size_t>(nz));
    for (std::int32_t z = 0; z < nz; ++z)
        for (std::int32_t y = 0; y < ny; ++y)
            planes[static_cast<std::size_t>(z)].push_back(
                device.units()[static_cast<std::size_t>(z * ny + y)]);

    SwapSchedule out;
    // Phase 1: intra-plane all-to-all (planes run in parallel under
    // ASAP replay since they are position-disjoint).
    for (const auto& plane : planes)
        out.append(unit_level_ata(device, plane, arch::ArchKind::Grid));
    if (nz == 1)
        return out;

    // Phase 2: plane-level line pattern.
    std::vector<std::vector<PhysicalQubit>> snake(
        static_cast<std::size_t>(nz));
    for (std::int32_t z = 0; z < nz; ++z) {
        snake[static_cast<std::size_t>(z)] =
            plane_snake(planes[static_cast<std::size_t>(z)]);
        // The boustrophedon path must follow couplers.
        const auto& s = snake[static_cast<std::size_t>(z)];
        for (std::size_t i = 1; i < s.size(); ++i)
            panic_unless(device.coupled(s[i - 1], s[i]),
                         "plane snake broke a coupler");
    }

    std::vector<std::int32_t> slot_occupant(static_cast<std::size_t>(nz));
    for (std::int32_t s = 0; s < nz; ++s)
        slot_occupant[static_cast<std::size_t>(s)] = s;
    std::vector<bool> met(
        static_cast<std::size_t>(nz) * static_cast<std::size_t>(nz),
        false);
    std::int64_t met_count = 0;
    std::int64_t want = static_cast<std::int64_t>(nz) * (nz - 1) / 2;

    auto plane_compute = [&](std::int32_t s) {
        std::int32_t u = slot_occupant[static_cast<std::size_t>(s)];
        std::int32_t v = slot_occupant[static_cast<std::size_t>(s + 1)];
        if (met[static_cast<std::size_t>(u) * nz + v])
            return;
        out.append(striped_bipartite(device,
                                     snake[static_cast<std::size_t>(s)],
                                     snake[static_cast<std::size_t>(s + 1)]));
        met[static_cast<std::size_t>(u) * nz + v] = true;
        met[static_cast<std::size_t>(v) * nz + u] = true;
        ++met_count;
    };
    auto plane_swap = [&](std::int32_t s) {
        const auto& a = planes[static_cast<std::size_t>(s)];
        const auto& b = planes[static_cast<std::size_t>(s + 1)];
        for (std::size_t y = 0; y < a.size(); ++y)
            for (std::size_t x = 0; x < a[y].size(); ++x)
                out.swap(a[y][x], b[y][x]);
        std::swap(slot_occupant[static_cast<std::size_t>(s)],
                  slot_occupant[static_cast<std::size_t>(s + 1)]);
    };

    for (std::int32_t round = 0; round <= nz + 2; ++round) {
        for (std::int32_t s = 0; s + 1 < nz; s += 2)
            plane_compute(s);
        if (met_count == want)
            return out;
        for (std::int32_t s = 1; s + 1 < nz; s += 2)
            plane_compute(s);
        if (met_count == want)
            return out;
        for (std::int32_t s = 1; s + 1 < nz; s += 2)
            plane_swap(s);
        for (std::int32_t s = 0; s + 1 < nz; s += 2)
            plane_swap(s);
    }
    throw PanicError("lattice3d plane pattern failed to converge");
}

} // namespace permuq::ata
