/**
 * @file
 * Internal helper for writing self-checking pattern generators.
 *
 * A PatternBuilder tracks, while slots are being emitted, where every
 * initial occupant currently sits and which occupant pairs have met at
 * compute slots. Generators use it to terminate exactly when coverage
 * completes and to avoid emitting redundant compute slots.
 */
#ifndef PERMUQ_ATA_PATTERN_BUILDER_H
#define PERMUQ_ATA_PATTERN_BUILDER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ata/swap_schedule.h"
#include "common/error.h"
#include "common/types.h"

namespace permuq::ata {

/** Emits slots while simulating occupancy and pairwise meetings. */
class PatternBuilder
{
  public:
    /** @param positions the physical positions the pattern may touch. */
    explicit PatternBuilder(std::vector<PhysicalQubit> positions)
        : positions_(std::move(positions)),
          k_(static_cast<std::int32_t>(positions_.size())),
          met_(static_cast<std::size_t>(k_) * static_cast<std::size_t>(k_),
               false)
    {
        occupant_.resize(static_cast<std::size_t>(k_));
        position_of_.resize(static_cast<std::size_t>(k_));
        for (std::int32_t i = 0; i < k_; ++i) {
            occupant_[static_cast<std::size_t>(i)] = i;
            position_of_[static_cast<std::size_t>(i)] = i;
        }
        for (std::int32_t i = 0; i < k_; ++i) {
            fatal_unless(
                dense_.emplace(positions_[static_cast<std::size_t>(i)], i)
                    .second,
                "duplicate position handed to PatternBuilder");
        }
    }

    std::int32_t size() const { return k_; }

    /** Dense index of a physical position. */
    std::int32_t
    dense(PhysicalQubit p) const
    {
        auto it = dense_.find(p);
        panic_unless(it != dense_.end(),
                     "pattern touches a position outside its region");
        return it->second;
    }

    /** Initial occupant id currently at dense position @p dp. */
    std::int32_t
    occupant(std::int32_t dp) const
    {
        return occupant_[static_cast<std::size_t>(dp)];
    }

    /** Current dense position of occupant @p id. */
    std::int32_t
    position_of(std::int32_t id) const
    {
        return position_of_[static_cast<std::size_t>(id)];
    }

    bool
    met(std::int32_t u, std::int32_t v) const
    {
        return met_[static_cast<std::size_t>(u) * k_ +
                    static_cast<std::size_t>(v)];
    }

    /** Emit a compute slot between dense positions and record the
     *  meeting. Returns true if the pair was new. */
    bool
    compute(std::int32_t dp, std::int32_t dq)
    {
        std::int32_t u = occupant(dp), v = occupant(dq);
        bool fresh = !met(u, v);
        sched_.compute(positions_[static_cast<std::size_t>(dp)],
                       positions_[static_cast<std::size_t>(dq)]);
        mark(u, v);
        return fresh;
    }

    /** Emit a compute slot only if the occupant pair has not met. */
    bool
    compute_if_new(std::int32_t dp, std::int32_t dq)
    {
        if (met(occupant(dp), occupant(dq)))
            return false;
        return compute(dp, dq);
    }

    /** Emit a swap slot between dense positions. */
    void
    swap(std::int32_t dp, std::int32_t dq)
    {
        sched_.swap(positions_[static_cast<std::size_t>(dp)],
                    positions_[static_cast<std::size_t>(dq)]);
        auto& ou = occupant_[static_cast<std::size_t>(dp)];
        auto& ov = occupant_[static_cast<std::size_t>(dq)];
        std::swap(ou, ov);
        position_of_[static_cast<std::size_t>(ou)] = dp;
        position_of_[static_cast<std::size_t>(ov)] = dq;
    }

    /**
     * Declare the first @p na positions to be side A of a bipartite
     * pattern; cross_pairs_met()/bipartite_done() then track pairs
     * with one occupant from each side.
     */
    void
    set_bipartite(std::int32_t na)
    {
        fatal_unless(na > 0 && na < k_, "invalid bipartite split");
        bipartite_na_ = na;
    }

    /** Distinct cross-side pairs met (requires set_bipartite). */
    std::int64_t cross_pairs_met() const { return cross_pairs_met_; }

    /** True once all |A| x |B| cross pairs have met. */
    bool
    bipartite_done() const
    {
        return cross_pairs_met_ ==
               static_cast<std::int64_t>(bipartite_na_) *
                   (k_ - bipartite_na_);
    }

    /** Number of distinct pairs met so far. */
    std::int64_t met_pairs() const { return met_pairs_; }

    /** True once all C(k,2) occupant pairs have met. */
    bool
    all_met() const
    {
        return met_pairs_ ==
               static_cast<std::int64_t>(k_) * (k_ - 1) / 2;
    }

    /** The schedule built so far. */
    const SwapSchedule& schedule() const { return sched_; }
    SwapSchedule take_schedule() { return std::move(sched_); }

  private:
    void
    mark(std::int32_t u, std::int32_t v)
    {
        if (met(u, v))
            return;
        met_[static_cast<std::size_t>(u) * k_ +
             static_cast<std::size_t>(v)] = true;
        met_[static_cast<std::size_t>(v) * k_ +
             static_cast<std::size_t>(u)] = true;
        ++met_pairs_;
        if (bipartite_na_ > 0 &&
            (u < bipartite_na_) != (v < bipartite_na_))
            ++cross_pairs_met_;
    }

    std::vector<PhysicalQubit> positions_;
    std::int32_t k_;
    std::vector<bool> met_;
    std::vector<std::int32_t> occupant_;
    std::vector<std::int32_t> position_of_;
    std::unordered_map<PhysicalQubit, std::int32_t> dense_;
    SwapSchedule sched_;
    std::int64_t met_pairs_ = 0;
    std::int32_t bipartite_na_ = 0;
    std::int64_t cross_pairs_met_ = 0;
};

} // namespace permuq::ata

#endif // PERMUQ_ATA_PATTERN_BUILDER_H
