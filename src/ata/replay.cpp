#include "replay.h"

#include <unordered_map>

#include "common/error.h"

namespace permuq::ata {

circuit::Circuit
replay(const arch::CouplingGraph& device, const graph::Graph& problem,
       const circuit::Mapping& initial, const SwapSchedule& sched,
       const ReplayOptions& options, const std::vector<bool>* done)
{
    fatal_unless(initial.num_physical() == device.num_qubits(),
                 "mapping does not match device size");
    fatal_unless(initial.num_logical() == problem.num_vertices(),
                 "mapping does not match problem size");

    // Remaining-edge bookkeeping: per-edge pending flag keyed by pair,
    // plus per-logical pending-degree so dead qubits are O(1) to test.
    std::unordered_map<VertexPair, bool, VertexPairHash> pending;
    std::vector<std::int32_t> pending_degree(
        static_cast<std::size_t>(problem.num_vertices()), 0);
    std::int64_t remaining = 0;
    const auto& edges = problem.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (done != nullptr && (*done)[i])
            continue;
        pending.emplace(edges[i], true);
        ++pending_degree[static_cast<std::size_t>(edges[i].a)];
        ++pending_degree[static_cast<std::size_t>(edges[i].b)];
        ++remaining;
    }

    circuit::Circuit circ(initial);
    for (const auto& slot : sched.slots) {
        if (options.stop_early && remaining == 0)
            break;
        LogicalQubit a = circ.final_mapping().logical_at(slot.p);
        LogicalQubit b = circ.final_mapping().logical_at(slot.q);
        if (slot.kind == Slot::Kind::Compute) {
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            auto it = pending.find(VertexPair(a, b));
            if (it == pending.end() || !it->second)
                continue;
            circ.add_compute(slot.p, slot.q);
            it->second = false;
            --pending_degree[static_cast<std::size_t>(a)];
            --pending_degree[static_cast<std::size_t>(b)];
            --remaining;
        } else {
            if (options.skip_dead_swaps) {
                bool a_dead =
                    a == kInvalidQubit ||
                    pending_degree[static_cast<std::size_t>(a)] == 0;
                bool b_dead =
                    b == kInvalidQubit ||
                    pending_degree[static_cast<std::size_t>(b)] == 0;
                if (a_dead && b_dead)
                    continue;
            }
            circ.add_swap(slot.p, slot.q);
        }
    }
    return circ;
}

} // namespace permuq::ata
