#include "replay.h"

#include "common/error.h"

namespace permuq::ata {

circuit::Circuit
replay(const arch::CouplingGraph& device, const graph::Graph& problem,
       const circuit::Mapping& initial, const SwapSchedule& sched,
       const ReplayOptions& options, const std::vector<bool>* done)
{
    fatal_unless(initial.num_physical() == device.num_qubits(),
                 "mapping does not match device size");
    fatal_unless(initial.num_logical() == problem.num_vertices(),
                 "mapping does not match problem size");

    // Remaining-edge bookkeeping: a dense n*n pending matrix (one O(1)
    // byte read per compute slot — a clique schedule probes n^2/2
    // slots, which made per-slot hashing the dominant replay cost),
    // plus per-logical pending-degree so dead qubits are O(1) to test.
    const std::size_t n =
        static_cast<std::size_t>(problem.num_vertices());
    std::vector<std::uint8_t> pending(n * n, 0);
    std::vector<std::int32_t> pending_degree(n, 0);
    std::int64_t remaining = 0;
    const auto& edges = problem.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (done != nullptr && (*done)[i])
            continue;
        const auto& edge = edges[i];
        pending[static_cast<std::size_t>(edge.a) * n +
                static_cast<std::size_t>(edge.b)] = 1;
        pending[static_cast<std::size_t>(edge.b) * n +
                static_cast<std::size_t>(edge.a)] = 1;
        ++pending_degree[static_cast<std::size_t>(edge.a)];
        ++pending_degree[static_cast<std::size_t>(edge.b)];
        ++remaining;
    }

    circuit::Circuit circ(initial);
    for (const auto& slot : sched.slots) {
        if (options.stop_early && remaining == 0)
            break;
        LogicalQubit a = circ.final_mapping().logical_at(slot.p);
        LogicalQubit b = circ.final_mapping().logical_at(slot.q);
        if (slot.kind == Slot::Kind::Compute) {
            if (a == kInvalidQubit || b == kInvalidQubit)
                continue;
            std::size_t ab = static_cast<std::size_t>(a) * n +
                             static_cast<std::size_t>(b);
            if (pending[ab] == 0)
                continue;
            circ.add_compute(slot.p, slot.q);
            pending[ab] = 0;
            pending[static_cast<std::size_t>(b) * n +
                    static_cast<std::size_t>(a)] = 0;
            --pending_degree[static_cast<std::size_t>(a)];
            --pending_degree[static_cast<std::size_t>(b)];
            --remaining;
        } else {
            if (options.skip_dead_swaps) {
                bool a_dead =
                    a == kInvalidQubit ||
                    pending_degree[static_cast<std::size_t>(a)] == 0;
                bool b_dead =
                    b == kInvalidQubit ||
                    pending_degree[static_cast<std::size_t>(b)] == 0;
                if (a_dead && b_dead)
                    continue;
            }
            circ.add_swap(slot.p, slot.q);
        }
    }
    return circ;
}

} // namespace permuq::ata
