/**
 * @file
 * Top-level ATA pattern interface: full-device and region-restricted
 * clique schedules for every supported architecture (paper §3, §5.1,
 * §6.3).
 *
 * A Region names a sub-area of the device in architecture-specific
 * coordinates; the range detector (core/prediction) shrinks the ATA
 * replay to the bounding region of each connected component of the
 * remaining problem graph.
 */
#ifndef PERMUQ_ATA_ATA_H
#define PERMUQ_ATA_ATA_H

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.h"
#include "ata/swap_schedule.h"
#include "common/types.h"

namespace permuq::ata {

/** A rectangular (or path-interval) sub-area of a device. */
struct Region
{
    /** Unit index range, inclusive (grid/Sycamore rows, hexagon
     *  columns). Unused for line/heavy-hex. */
    std::int32_t unit0 = 0;
    std::int32_t unit1 = -1;
    /** Index range within each unit, inclusive. */
    std::int32_t elem0 = 0;
    std::int32_t elem1 = -1;
    /** Longest-path index range, inclusive (line/heavy-hex). */
    std::int32_t path0 = 0;
    std::int32_t path1 = -1;

    friend bool operator==(const Region&, const Region&) = default;
};

/** The region covering the whole device. */
Region full_region(const arch::CouplingGraph& device);

/**
 * The physical positions a region's schedule touches. For heavy-hex
 * this is the path interval plus the off-path qubits attached inside
 * it; for unit-based architectures the unit/element rectangle.
 */
std::vector<PhysicalQubit> region_positions(
    const arch::CouplingGraph& device, const Region& region);

/**
 * Number of positions in a region (cheaper than materializing them).
 */
std::int32_t region_size(const arch::CouplingGraph& device,
                         const Region& region);

/**
 * A clique (all-to-all) schedule over the given region of the device.
 * Every generator is self-checking: it simulates coverage while
 * emitting and fails loudly rather than return an incomplete pattern.
 */
SwapSchedule ata_schedule(const arch::CouplingGraph& device,
                          const Region& region);

/** Convenience: ata_schedule over the full device. */
SwapSchedule full_ata_schedule(const arch::CouplingGraph& device);

/**
 * Smallest region of the device that contains all of @p positions
 * (used by the range detector, §6.3).
 */
Region bounding_region(const arch::CouplingGraph& device,
                       const std::vector<PhysicalQubit>& positions);

/** True if two regions overlap (then the detector merges them). */
bool regions_overlap(const arch::CouplingGraph& device, const Region& a,
                     const Region& b);

/** The smallest region containing both. */
Region merge_regions(const Region& a, const Region& b);

} // namespace permuq::ata

#endif // PERMUQ_ATA_ATA_H
