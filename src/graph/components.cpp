#include "components.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/error.h"

namespace permuq::graph {

namespace {

/** Union-find with path halving and union by size. */
class DisjointSet
{
  public:
    explicit DisjointSet(std::int32_t n)
        : parent_(static_cast<std::size_t>(n)),
          size_(static_cast<std::size_t>(n), 1)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::int32_t
    find(std::int32_t x)
    {
        while (parent_[static_cast<std::size_t>(x)] != x) {
            auto& p = parent_[static_cast<std::size_t>(x)];
            p = parent_[static_cast<std::size_t>(p)];
            x = p;
        }
        return x;
    }

    void
    unite(std::int32_t a, std::int32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (size_[static_cast<std::size_t>(a)] <
            size_[static_cast<std::size_t>(b)])
            std::swap(a, b);
        parent_[static_cast<std::size_t>(b)] = a;
        size_[static_cast<std::size_t>(a)] +=
            size_[static_cast<std::size_t>(b)];
    }

  private:
    std::vector<std::int32_t> parent_;
    std::vector<std::int32_t> size_;
};

Components
build_components(std::int32_t n, DisjointSet& dsu,
                 const std::vector<bool>& touched, bool skip_isolated)
{
    Components out;
    out.component_of.assign(static_cast<std::size_t>(n), -1);
    std::vector<std::int32_t> root_to_id(static_cast<std::size_t>(n), -1);
    for (std::int32_t v = 0; v < n; ++v) {
        if (skip_isolated && !touched[static_cast<std::size_t>(v)])
            continue;
        std::int32_t root = dsu.find(v);
        auto& id = root_to_id[static_cast<std::size_t>(root)];
        if (id == -1) {
            id = static_cast<std::int32_t>(out.members.size());
            out.members.emplace_back();
        }
        out.component_of[static_cast<std::size_t>(v)] = id;
        out.members[static_cast<std::size_t>(id)].push_back(v);
    }
    return out;
}

} // namespace

Components
connected_components(const Graph& g, bool skip_isolated)
{
    DisjointSet dsu(g.num_vertices());
    std::vector<bool> touched(static_cast<std::size_t>(g.num_vertices()),
                              false);
    for (const auto& e : g.edges()) {
        dsu.unite(e.a, e.b);
        touched[static_cast<std::size_t>(e.a)] = true;
        touched[static_cast<std::size_t>(e.b)] = true;
    }
    return build_components(g.num_vertices(), dsu, touched, skip_isolated);
}

Components
edge_subset_components(std::int32_t n, const std::vector<VertexPair>& edges)
{
    fatal_unless(n >= 0, "edge_subset_components: negative vertex count");
    DisjointSet dsu(n);
    std::vector<bool> touched(static_cast<std::size_t>(n), false);
    for (const auto& e : edges) {
        // Build the message only on failure; this loop runs once per
        // problem edge per prediction snapshot.
        if (e.a < 0 || e.b >= n)
            throw FatalError("edge_subset_components: edge (" +
                             std::to_string(e.a) + "," +
                             std::to_string(e.b) +
                             ") outside vertex range [0," +
                             std::to_string(n) + ")");
        dsu.unite(e.a, e.b);
        touched[static_cast<std::size_t>(e.a)] = true;
        touched[static_cast<std::size_t>(e.b)] = true;
    }
    return build_components(n, dsu, touched, /*skip_isolated=*/true);
}

} // namespace permuq::graph
