/**
 * @file
 * Shortest-path distances on unweighted graphs.
 *
 * The coupling graph needs all-pairs distances for the A* heuristic
 * (paper Eq. 2) and for greedy SWAP gain computation; a 1024-vertex
 * chip needs a 1M-entry table which fits comfortably as 16-bit values.
 */
#ifndef PERMUQ_GRAPH_DISTANCE_H
#define PERMUQ_GRAPH_DISTANCE_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace permuq::graph {

/** Single-source BFS distances; kUnreachable for disconnected vertices. */
std::vector<std::int32_t> bfs_distances(const Graph& g, std::int32_t source);

/**
 * Dense all-pairs distance table computed by n BFS passes.
 * Entries saturate at 65534; 65535 encodes "unreachable".
 */
class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** Build the table for @p g (O(n * (n + m))). */
    explicit DistanceMatrix(const Graph& g);

    /** Distance between u and v; kUnreachable if disconnected. */
    std::int32_t
    at(std::int32_t u, std::int32_t v) const
    {
        std::uint16_t raw =
            table_[static_cast<std::size_t>(u) * n_ +
                   static_cast<std::size_t>(v)];
        return raw == kRawUnreachable ? kUnreachable
                                      : static_cast<std::int32_t>(raw);
    }

    /**
     * Raw row of distances from @p u, one entry per target vertex.
     * Entries are encoded; pass each through decode() (an entry of
     * kRawUnreachable marks a disconnected pair). Row-wise iteration
     * is the cache-friendly access pattern for the placement and A*
     * hot loops, which would otherwise call at() column-major.
     */
    const std::uint16_t*
    row(std::int32_t u) const
    {
        return table_.data() + static_cast<std::size_t>(u) * n_;
    }

    /** Decode one raw row entry into a distance (or kUnreachable). */
    static std::int32_t
    decode(std::uint16_t raw)
    {
        return raw == kRawUnreachable ? kUnreachable
                                      : static_cast<std::int32_t>(raw);
    }

    /** Number of vertices the table covers. */
    std::int32_t num_vertices() const { return static_cast<std::int32_t>(n_); }

    /** Largest finite pairwise distance (graph diameter). */
    std::int32_t diameter() const;

    /** Raw encoding of "unreachable" in row() entries. */
    static constexpr std::uint16_t kRawUnreachable = 0xffff;

  private:
    std::size_t n_ = 0;
    std::vector<std::uint16_t> table_;
};

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_DISTANCE_H
