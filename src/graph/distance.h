/**
 * @file
 * Shortest-path distances on unweighted graphs.
 *
 * The coupling graph needs all-pairs distances for the A* heuristic
 * (paper Eq. 2) and for greedy SWAP gain computation; a 1024-vertex
 * chip needs a 1M-entry table which fits comfortably as 16-bit values.
 */
#ifndef PERMUQ_GRAPH_DISTANCE_H
#define PERMUQ_GRAPH_DISTANCE_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace permuq::graph {

/** Single-source BFS distances; kUnreachable for disconnected vertices. */
std::vector<std::int32_t> bfs_distances(const Graph& g, std::int32_t source);

/**
 * Dense all-pairs distance table computed by n BFS passes.
 * Entries saturate at 65534; 65535 encodes "unreachable".
 */
class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** Build the table for @p g (O(n * (n + m))). */
    explicit DistanceMatrix(const Graph& g);

    /** Distance between u and v; kUnreachable if disconnected. */
    std::int32_t
    at(std::int32_t u, std::int32_t v) const
    {
        std::uint16_t raw =
            table_[static_cast<std::size_t>(u) * n_ +
                   static_cast<std::size_t>(v)];
        return raw == kRawUnreachable ? kUnreachable
                                      : static_cast<std::int32_t>(raw);
    }

    /**
     * Raw row of distances from @p u, one entry per target vertex.
     * Entries are encoded; pass each through decode() (an entry of
     * kRawUnreachable marks a disconnected pair). Row-wise iteration
     * is the cache-friendly access pattern for the placement and A*
     * hot loops, which would otherwise call at() column-major.
     */
    const std::uint16_t*
    row(std::int32_t u) const
    {
        return table_.data() + static_cast<std::size_t>(u) * n_;
    }

    /** Decode one raw row entry into a distance (or kUnreachable). */
    static std::int32_t
    decode(std::uint16_t raw)
    {
        return raw == kRawUnreachable ? kUnreachable
                                      : static_cast<std::int32_t>(raw);
    }

    /** Number of vertices the table covers. */
    std::int32_t num_vertices() const { return static_cast<std::int32_t>(n_); }

    /** Largest finite pairwise distance (graph diameter). */
    std::int32_t diameter() const;

    /** Raw encoding of "unreachable" in row() entries. */
    static constexpr std::uint16_t kRawUnreachable = 0xffff;

  private:
    std::size_t n_ = 0;
    std::vector<std::uint16_t> table_;
};

/**
 * Int32-indexed CSR adjacency: the whole graph flattened into two
 * arrays (offsets + neighbor ids), with neighbors of each vertex in
 * ascending order. A 100k-qubit fabric is ~200k edges = ~1.6 MB here,
 * versus ~20 GB for a dense DistanceMatrix — this is the adjacency
 * representation every fabric-scale path must use.
 */
class FlatAdjacency
{
  public:
    FlatAdjacency() = default;

    /** Flatten @p g (neighbors already sorted by Graph's invariant). */
    explicit FlatAdjacency(const Graph& g);

    std::int32_t
    num_vertices() const
    {
        return static_cast<std::int32_t>(offsets_.size()) - 1;
    }

    /** Degree of @p v. */
    std::int32_t
    degree(std::int32_t v) const
    {
        return offsets_[static_cast<std::size_t>(v) + 1] -
               offsets_[static_cast<std::size_t>(v)];
    }

    /** Pointer to the first neighbor of @p v (ascending order). */
    const std::int32_t*
    neighbors_begin(std::int32_t v) const
    {
        return neighbors_.data() + offsets_[static_cast<std::size_t>(v)];
    }

    const std::int32_t*
    neighbors_end(std::int32_t v) const
    {
        return neighbors_.data() +
               offsets_[static_cast<std::size_t>(v) + 1];
    }

    /** Exact heap bytes held by the two flat arrays. */
    std::size_t
    memory_bytes() const
    {
        return offsets_.capacity() * sizeof(std::int32_t) +
               neighbors_.capacity() * sizeof(std::int32_t);
    }

  private:
    std::vector<std::int32_t> offsets_{0};
    std::vector<std::int32_t> neighbors_;
};

/**
 * On-demand single-source BFS distances over a FlatAdjacency, with an
 * early exit once a target is settled. Memory is O(n) scratch reused
 * across queries (never a dense n^2 table), so it scales to 100k-qubit
 * fabrics. Not thread-safe: each thread owns its own oracle.
 */
class BfsOracle
{
  public:
    /** @p adj must outlive the oracle. */
    explicit BfsOracle(const FlatAdjacency& adj);

    /**
     * Distance from @p source to @p target; kUnreachable when
     * disconnected. The BFS stops as soon as @p target is settled.
     */
    std::int32_t distance(std::int32_t source, std::int32_t target);

    /**
     * Full distance row from @p source (entry per vertex,
     * kUnreachable for disconnected ones). The returned reference is
     * the internal scratch row — valid until the next query.
     */
    const std::vector<std::int32_t>& distances_from(std::int32_t source);

  private:
    /** BFS from @p source; stops early when @p target (>= 0) settles. */
    void run(std::int32_t source, std::int32_t target);

    const FlatAdjacency* adj_;
    /** Scratch distance row; stamp_ marks entries valid this query. */
    std::vector<std::int32_t> dist_;
    std::vector<std::int32_t> queue_;
};

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_DISTANCE_H
