#include "distance.h"

#include <algorithm>
#include <deque>
#include <string>

#include "common/error.h"

namespace permuq::graph {

std::vector<std::int32_t>
bfs_distances(const Graph& g, std::int32_t source)
{
    fatal_unless(source >= 0 && source < g.num_vertices(),
                 "BFS source out of range");
    std::vector<std::int32_t> dist(
        static_cast<std::size_t>(g.num_vertices()), kUnreachable);
    std::deque<std::int32_t> queue;
    dist[static_cast<std::size_t>(source)] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        std::int32_t v = queue.front();
        queue.pop_front();
        std::int32_t next = dist[static_cast<std::size_t>(v)] + 1;
        for (std::int32_t w : g.neighbors(v)) {
            if (dist[static_cast<std::size_t>(w)] == kUnreachable) {
                dist[static_cast<std::size_t>(w)] = next;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(static_cast<std::size_t>(g.num_vertices()))
{
    table_.assign(n_ * n_, kRawUnreachable);
    for (std::int32_t s = 0; s < g.num_vertices(); ++s) {
        auto dist = bfs_distances(g, s);
        for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
            std::int32_t d = dist[static_cast<std::size_t>(v)];
            if (d != kUnreachable) {
                panic_unless(d < kRawUnreachable,
                             "distance between vertices (" +
                                 std::to_string(s) + "," +
                                 std::to_string(v) +
                                 ") exceeds 16-bit storage");
                table_[static_cast<std::size_t>(s) * n_ +
                       static_cast<std::size_t>(v)] =
                    static_cast<std::uint16_t>(d);
            }
        }
    }
}

std::int32_t
DistanceMatrix::diameter() const
{
    std::int32_t best = 0;
    for (std::size_t i = 0; i < n_ * n_; ++i)
        if (table_[i] != kRawUnreachable)
            best = std::max(best, static_cast<std::int32_t>(table_[i]));
    return best;
}

FlatAdjacency::FlatAdjacency(const Graph& g)
{
    const std::int32_t n = g.num_vertices();
    offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    neighbors_.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
    for (std::int32_t v = 0; v < n; ++v) {
        for (std::int32_t w : g.neighbors(v))
            neighbors_.push_back(w);
        offsets_[static_cast<std::size_t>(v) + 1] =
            static_cast<std::int32_t>(neighbors_.size());
    }
}

BfsOracle::BfsOracle(const FlatAdjacency& adj)
    : adj_(&adj),
      dist_(static_cast<std::size_t>(adj.num_vertices()), kUnreachable)
{
    queue_.reserve(dist_.size());
}

void
BfsOracle::run(std::int32_t source, std::int32_t target)
{
    fatal_unless(source >= 0 && source < adj_->num_vertices(),
                 "BFS source out of range");
    std::fill(dist_.begin(), dist_.end(), kUnreachable);
    queue_.clear();
    dist_[static_cast<std::size_t>(source)] = 0;
    queue_.push_back(source);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        std::int32_t v = queue_[head];
        if (v == target)
            return;
        std::int32_t next = dist_[static_cast<std::size_t>(v)] + 1;
        for (const std::int32_t* w = adj_->neighbors_begin(v);
             w != adj_->neighbors_end(v); ++w) {
            if (dist_[static_cast<std::size_t>(*w)] == kUnreachable) {
                dist_[static_cast<std::size_t>(*w)] = next;
                queue_.push_back(*w);
            }
        }
    }
}

std::int32_t
BfsOracle::distance(std::int32_t source, std::int32_t target)
{
    fatal_unless(target >= 0 && target < adj_->num_vertices(),
                 "BFS target out of range");
    run(source, target);
    return dist_[static_cast<std::size_t>(target)];
}

const std::vector<std::int32_t>&
BfsOracle::distances_from(std::int32_t source)
{
    run(source, /*target=*/-1);
    return dist_;
}

} // namespace permuq::graph
