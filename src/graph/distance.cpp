#include "distance.h"

#include <deque>
#include <string>

#include "common/error.h"

namespace permuq::graph {

std::vector<std::int32_t>
bfs_distances(const Graph& g, std::int32_t source)
{
    fatal_unless(source >= 0 && source < g.num_vertices(),
                 "BFS source out of range");
    std::vector<std::int32_t> dist(
        static_cast<std::size_t>(g.num_vertices()), kUnreachable);
    std::deque<std::int32_t> queue;
    dist[static_cast<std::size_t>(source)] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        std::int32_t v = queue.front();
        queue.pop_front();
        std::int32_t next = dist[static_cast<std::size_t>(v)] + 1;
        for (std::int32_t w : g.neighbors(v)) {
            if (dist[static_cast<std::size_t>(w)] == kUnreachable) {
                dist[static_cast<std::size_t>(w)] = next;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(static_cast<std::size_t>(g.num_vertices()))
{
    table_.assign(n_ * n_, kRawUnreachable);
    for (std::int32_t s = 0; s < g.num_vertices(); ++s) {
        auto dist = bfs_distances(g, s);
        for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
            std::int32_t d = dist[static_cast<std::size_t>(v)];
            if (d != kUnreachable) {
                panic_unless(d < kRawUnreachable,
                             "distance between vertices (" +
                                 std::to_string(s) + "," +
                                 std::to_string(v) +
                                 ") exceeds 16-bit storage");
                table_[static_cast<std::size_t>(s) * n_ +
                       static_cast<std::size_t>(v)] =
                    static_cast<std::uint16_t>(d);
            }
        }
    }
}

std::int32_t
DistanceMatrix::diameter() const
{
    std::int32_t best = 0;
    for (std::size_t i = 0; i < n_ * n_; ++i)
        if (table_[i] != kRawUnreachable)
            best = std::max(best, static_cast<std::int32_t>(table_[i]));
    return best;
}

} // namespace permuq::graph
