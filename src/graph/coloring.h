/**
 * @file
 * Greedy graph coloring, used by the gate-scheduling sub-module
 * (paper §6.2): hardware-compliant gates are vertices of a conflict
 * graph (shared qubit, or crosstalk), and the largest color class is
 * scheduled in the current cycle.
 */
#ifndef PERMUQ_GRAPH_COLORING_H
#define PERMUQ_GRAPH_COLORING_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace permuq::graph {

/** A proper vertex coloring plus its class structure. */
struct Coloring
{
    /** color_of[v] in [0, num_colors). */
    std::vector<std::int32_t> color_of;
    std::int32_t num_colors = 0;
    /** classes[c] = vertices with color c. */
    std::vector<std::vector<std::int32_t>> classes;
};

/**
 * Welsh–Powell greedy coloring: vertices in non-increasing degree order,
 * each assigned the smallest color absent from its neighborhood.
 */
Coloring greedy_coloring(const Graph& conflict);

/** Index of the largest color class (ties -> smallest index). */
std::int32_t largest_class(const Coloring& coloring);

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_COLORING_H
