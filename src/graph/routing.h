/**
 * @file
 * The shortest-path "pull one qubit toward the other" walk shared by
 * every router in the project (the greedy engine's focus mode and
 * custom-device fallback, and the baselines' stall fallback).
 *
 * The walk is deliberately deterministic: from the moving endpoint it
 * always takes the first neighbor (in sorted adjacency order) that
 * strictly reduces the distance to the target, so the emitted SWAP
 * sequence is a pure function of (graph, distances, endpoints). The
 * three previous hand-inlined copies of this loop relied on exactly
 * that property; keep it when modifying.
 */
#ifndef PERMUQ_GRAPH_ROUTING_H
#define PERMUQ_GRAPH_ROUTING_H

#include <string>

#include "common/error.h"
#include "graph/distance.h"
#include "graph/graph.h"

namespace permuq::graph {

/**
 * Walk @p from toward @p to until the two are adjacent, invoking
 * swap(current, next) for every step taken.
 * @return the final position of the walker (adjacent to @p to, or
 *         @p from itself if the pair already was adjacent or equal).
 */
template <typename SwapFn>
std::int32_t
walk_toward(const Graph& connectivity, const DistanceMatrix& dist,
            std::int32_t from, std::int32_t to, SwapFn&& swap)
{
    while (dist.at(from, to) > 1) {
        std::int32_t d = dist.at(from, to);
        std::int32_t next = kInvalidQubit;
        for (std::int32_t nb : connectivity.neighbors(from)) {
            if (dist.at(nb, to) < d) {
                next = nb;
                break;
            }
        }
        if (next == kInvalidQubit)
            panic_unless(false,
                         "no distance-reducing step between vertices (" +
                             std::to_string(from) + "," +
                             std::to_string(to) + "); disconnected pair?");
        swap(from, next);
        from = next;
    }
    return from;
}

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_ROUTING_H
