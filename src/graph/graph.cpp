#include "graph.h"

#include <algorithm>

#include "common/error.h"

namespace permuq::graph {

Graph::Graph(std::int32_t n) : num_vertices_(n)
{
    fatal_unless(n >= 0, "graph vertex count must be non-negative");
    adjacency_.resize(static_cast<std::size_t>(n));
}

std::int32_t
Graph::add_edge(std::int32_t u, std::int32_t v)
{
    fatal_unless(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_,
                 "edge endpoint out of range");
    fatal_unless(u != v, "self-loops are not allowed");
    fatal_unless(!has_edge(u, v), "duplicate edge");

    auto insert_sorted = [&](std::int32_t from, std::int32_t to) {
        auto& adj = adjacency_[static_cast<std::size_t>(from)];
        adj.insert(std::lower_bound(adj.begin(), adj.end(), to), to);
    };
    insert_sorted(u, v);
    insert_sorted(v, u);
    edges_.emplace_back(u, v);
    return static_cast<std::int32_t>(edges_.size()) - 1;
}

bool
Graph::has_edge(std::int32_t u, std::int32_t v) const
{
    if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_)
        return false;
    const auto& adj = adjacency_[static_cast<std::size_t>(u)];
    return std::binary_search(adj.begin(), adj.end(), v);
}

double
Graph::density() const
{
    if (num_vertices_ < 2)
        return 0.0;
    double pairs = 0.5 * num_vertices_ * (num_vertices_ - 1);
    return static_cast<double>(num_edges()) / pairs;
}

Graph
Graph::clique(std::int32_t n)
{
    Graph g(n);
    for (std::int32_t u = 0; u < n; ++u)
        for (std::int32_t v = u + 1; v < n; ++v)
            g.add_edge(u, v);
    return g;
}

} // namespace permuq::graph
