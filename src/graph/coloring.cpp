#include "coloring.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace permuq::graph {

Coloring
greedy_coloring(const Graph& conflict)
{
    std::int32_t n = conflict.num_vertices();
    Coloring result;
    result.color_of.assign(static_cast<std::size_t>(n), -1);

    std::vector<std::int32_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                         return conflict.degree(a) > conflict.degree(b);
                     });

    std::vector<bool> used; // colors used by the current neighborhood
    for (std::int32_t v : order) {
        used.assign(static_cast<std::size_t>(result.num_colors) + 1, false);
        for (std::int32_t w : conflict.neighbors(v)) {
            std::int32_t c = result.color_of[static_cast<std::size_t>(w)];
            if (c >= 0 && c < static_cast<std::int32_t>(used.size()))
                used[static_cast<std::size_t>(c)] = true;
        }
        std::int32_t color = 0;
        while (used[static_cast<std::size_t>(color)])
            ++color;
        result.color_of[static_cast<std::size_t>(v)] = color;
        result.num_colors = std::max(result.num_colors, color + 1);
    }

    result.classes.resize(static_cast<std::size_t>(result.num_colors));
    for (std::int32_t v = 0; v < n; ++v)
        result.classes[static_cast<std::size_t>(
                           result.color_of[static_cast<std::size_t>(v)])]
            .push_back(v);
    return result;
}

std::int32_t
largest_class(const Coloring& coloring)
{
    fatal_unless(coloring.num_colors > 0, "coloring has no classes");
    std::int32_t best = 0;
    for (std::int32_t c = 1; c < coloring.num_colors; ++c) {
        if (coloring.classes[static_cast<std::size_t>(c)].size() >
            coloring.classes[static_cast<std::size_t>(best)].size())
            best = c;
    }
    return best;
}

} // namespace permuq::graph
