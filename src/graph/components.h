/**
 * @file
 * Connected components, used by the ATA-prediction range detector
 * (paper §6.3) to split the remaining problem graph into independent
 * interacting-qubit sets.
 */
#ifndef PERMUQ_GRAPH_COMPONENTS_H
#define PERMUQ_GRAPH_COMPONENTS_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace permuq::graph {

/** Result of a connected-components decomposition. */
struct Components
{
    /** component_of[v] = component id, or -1 for isolated vertices when
     *  skip_isolated was requested. */
    std::vector<std::int32_t> component_of;
    /** members[c] = sorted vertex list of component c. */
    std::vector<std::vector<std::int32_t>> members;
};

/**
 * Decompose @p g into connected components.
 * @param skip_isolated when true, degree-0 vertices get id -1 and no
 *        component — the range detector only cares about vertices that
 *        still have pending gates.
 */
Components connected_components(const Graph& g, bool skip_isolated = false);

/**
 * Components of the subgraph induced by a set of edges over @p n
 * vertices. Vertices untouched by any edge are skipped (id -1).
 */
Components
edge_subset_components(std::int32_t n, const std::vector<VertexPair>& edges);

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_COMPONENTS_H
