/**
 * @file
 * A minimal undirected-graph container shared by the coupling-graph,
 * problem-graph, and scheduling layers.
 *
 * Vertices are dense integers [0, n). Parallel edges are rejected;
 * self-loops are rejected. Adjacency is kept sorted for deterministic
 * iteration order across platforms.
 */
#ifndef PERMUQ_GRAPH_GRAPH_H
#define PERMUQ_GRAPH_GRAPH_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace permuq::graph {

/** Undirected simple graph over dense integer vertices. */
class Graph
{
  public:
    Graph() = default;

    /** Create a graph with @p n isolated vertices. */
    explicit Graph(std::int32_t n);

    /** Number of vertices. */
    std::int32_t num_vertices() const { return num_vertices_; }

    /** Number of edges. */
    std::int32_t
    num_edges() const
    {
        return static_cast<std::int32_t>(edges_.size());
    }

    /**
     * Add undirected edge (u, v). Duplicate edges and self-loops throw.
     * @return the index of the new edge in edges().
     */
    std::int32_t add_edge(std::int32_t u, std::int32_t v);

    /** True if edge (u, v) exists. */
    bool has_edge(std::int32_t u, std::int32_t v) const;

    /** Sorted neighbor list of @p v. */
    const std::vector<std::int32_t>&
    neighbors(std::int32_t v) const
    {
        return adjacency_[static_cast<std::size_t>(v)];
    }

    /** Degree of @p v. */
    std::int32_t
    degree(std::int32_t v) const
    {
        return static_cast<std::int32_t>(neighbors(v).size());
    }

    /** All edges, in insertion order, with pair.a < pair.b. */
    const std::vector<VertexPair>& edges() const { return edges_; }

    /** Edge density: |E| / C(n,2); 0 for n < 2. */
    double density() const;

    /** Complete graph on @p n vertices. */
    static Graph clique(std::int32_t n);

  private:
    std::int32_t num_vertices_ = 0;
    std::vector<std::vector<std::int32_t>> adjacency_;
    std::vector<VertexPair> edges_;
};

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_GRAPH_H
