/**
 * @file
 * Weighted matchings, used by the SWAP-insertion sub-module (paper
 * §6.2): candidate SWAPs are edges weighted by routing gain and link
 * error, and a heavy disjoint subset is selected each cycle.
 *
 * The paper calls for minimum-weight perfect matching; at 1024 qubits
 * an exact blossom implementation is unnecessary because the candidate
 * graph is sparse and the selection re-runs every cycle, so a sorted
 * greedy maximal matching captures the same behaviour. An exact
 * bitmask-DP matcher is provided for small graphs and is used by the
 * test suite to bound the greedy matcher's quality.
 */
#ifndef PERMUQ_GRAPH_MATCHING_H
#define PERMUQ_GRAPH_MATCHING_H

#include <cstdint>
#include <vector>

namespace permuq::graph {

/** One candidate edge for a matching. */
struct WeightedEdge
{
    std::int32_t u = 0;
    std::int32_t v = 0;
    double weight = 0.0;
};

/**
 * Greedy maximal matching that maximizes total weight: edges are taken
 * in non-increasing weight order (ties by endpoints for determinism)
 * while their endpoints are free.
 * @return indices into @p edges of the chosen edges.
 */
std::vector<std::int32_t>
greedy_max_weight_matching(std::int32_t n,
                           const std::vector<WeightedEdge>& edges);

/**
 * Exact maximum-weight matching by subset DP; requires n <= 22.
 * @return indices into @p edges of an optimal matching.
 */
std::vector<std::int32_t>
exact_max_weight_matching(std::int32_t n,
                          const std::vector<WeightedEdge>& edges);

/** Sum of the weights of the edges selected by @p picks. */
double matching_weight(const std::vector<WeightedEdge>& edges,
                       const std::vector<std::int32_t>& picks);

} // namespace permuq::graph

#endif // PERMUQ_GRAPH_MATCHING_H
