#include "matching.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace permuq::graph {

std::vector<std::int32_t>
greedy_max_weight_matching(std::int32_t n,
                           const std::vector<WeightedEdge>& edges)
{
    // Sort keys are materialized once so the comparator never chases
    // the edges array again; the ordering (weight desc, then endpoints
    // asc) is total over distinct endpoint pairs, which is what makes
    // the result independent of the caller's edge order.
    struct SortKey
    {
        double weight;
        std::int32_t u, v;
        std::int32_t index;
    };
    std::vector<SortKey> order;
    order.reserve(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto& e = edges[i];
        fatal_unless(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u != e.v,
                     "matching edge endpoint out of range");
        order.push_back({e.weight, e.u, e.v, static_cast<std::int32_t>(i)});
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const SortKey& a, const SortKey& b) {
                         if (a.weight != b.weight)
                             return a.weight > b.weight;
                         if (a.u != b.u)
                             return a.u < b.u;
                         return a.v < b.v;
                     });

    // Plain byte buffer: vector<bool>'s bit proxies cost a shift and
    // mask per access, which is measurable in the per-cycle SWAP
    // selection of 1000-qubit compilations.
    std::vector<std::uint8_t> taken(static_cast<std::size_t>(n), 0);
    std::vector<std::int32_t> picks;
    for (const auto& key : order) {
        if (taken[static_cast<std::size_t>(key.u)] == 0 &&
            taken[static_cast<std::size_t>(key.v)] == 0) {
            taken[static_cast<std::size_t>(key.u)] = 1;
            taken[static_cast<std::size_t>(key.v)] = 1;
            picks.push_back(key.index);
        }
    }
    return picks;
}

std::vector<std::int32_t>
exact_max_weight_matching(std::int32_t n,
                          const std::vector<WeightedEdge>& edges)
{
    fatal_unless(n >= 0 && n <= 22, "exact matching limited to n <= 22");
    const std::size_t full = static_cast<std::size_t>(1) << n;
    constexpr double kNegInf = -1e300;

    // best[mask] = max weight using only vertices in mask; choice[mask]
    // records the edge picked at this subproblem (-1 = skip lowest bit).
    std::vector<double> best(full, kNegInf);
    std::vector<std::int32_t> choice(full, -2);
    best[0] = 0.0;
    choice[0] = -2;

    for (std::size_t mask = 1; mask < full; ++mask) {
        int low = std::countr_zero(mask);
        // Option 1: vertex `low` stays unmatched.
        std::size_t without = mask & (mask - 1);
        best[mask] = best[without];
        choice[mask] = -1;
        // Option 2: match `low` with another vertex in mask.
        for (std::size_t i = 0; i < edges.size(); ++i) {
            const auto& e = edges[i];
            std::int32_t a = e.u, b = e.v;
            if (a != low && b != low)
                continue;
            std::int32_t other = (a == low) ? b : a;
            if (!(mask >> other & 1) || other == low)
                continue;
            std::size_t rest = mask & ~(std::size_t(1) << low) &
                               ~(std::size_t(1) << other);
            double cand = best[rest] + e.weight;
            if (cand > best[mask]) {
                best[mask] = cand;
                choice[mask] = static_cast<std::int32_t>(i);
            }
        }
    }

    std::vector<std::int32_t> picks;
    std::size_t mask = full - 1;
    while (mask != 0) {
        std::int32_t c = choice[mask];
        if (c == -1) {
            mask &= mask - 1;
        } else {
            const auto& e = edges[static_cast<std::size_t>(c)];
            picks.push_back(c);
            mask &= ~(std::size_t(1) << e.u);
            mask &= ~(std::size_t(1) << e.v);
        }
    }
    std::sort(picks.begin(), picks.end());
    return picks;
}

double
matching_weight(const std::vector<WeightedEdge>& edges,
                const std::vector<std::int32_t>& picks)
{
    double total = 0.0;
    for (std::int32_t i : picks)
        total += edges[static_cast<std::size_t>(i)].weight;
    return total;
}

} // namespace permuq::graph
