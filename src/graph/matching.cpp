#include "matching.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace permuq::graph {

std::vector<std::int32_t>
greedy_max_weight_matching(std::int32_t n,
                           const std::vector<WeightedEdge>& edges)
{
    std::vector<std::int32_t> order(edges.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                         const auto& ea = edges[static_cast<std::size_t>(a)];
                         const auto& eb = edges[static_cast<std::size_t>(b)];
                         if (ea.weight != eb.weight)
                             return ea.weight > eb.weight;
                         if (ea.u != eb.u)
                             return ea.u < eb.u;
                         return ea.v < eb.v;
                     });

    std::vector<bool> taken(static_cast<std::size_t>(n), false);
    std::vector<std::int32_t> picks;
    for (std::int32_t idx : order) {
        const auto& e = edges[static_cast<std::size_t>(idx)];
        fatal_unless(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u != e.v,
                     "matching edge endpoint out of range");
        if (!taken[static_cast<std::size_t>(e.u)] &&
            !taken[static_cast<std::size_t>(e.v)]) {
            taken[static_cast<std::size_t>(e.u)] = true;
            taken[static_cast<std::size_t>(e.v)] = true;
            picks.push_back(idx);
        }
    }
    return picks;
}

std::vector<std::int32_t>
exact_max_weight_matching(std::int32_t n,
                          const std::vector<WeightedEdge>& edges)
{
    fatal_unless(n >= 0 && n <= 22, "exact matching limited to n <= 22");
    const std::size_t full = static_cast<std::size_t>(1) << n;
    constexpr double kNegInf = -1e300;

    // best[mask] = max weight using only vertices in mask; choice[mask]
    // records the edge picked at this subproblem (-1 = skip lowest bit).
    std::vector<double> best(full, kNegInf);
    std::vector<std::int32_t> choice(full, -2);
    best[0] = 0.0;
    choice[0] = -2;

    for (std::size_t mask = 1; mask < full; ++mask) {
        int low = std::countr_zero(mask);
        // Option 1: vertex `low` stays unmatched.
        std::size_t without = mask & (mask - 1);
        best[mask] = best[without];
        choice[mask] = -1;
        // Option 2: match `low` with another vertex in mask.
        for (std::size_t i = 0; i < edges.size(); ++i) {
            const auto& e = edges[i];
            std::int32_t a = e.u, b = e.v;
            if (a != low && b != low)
                continue;
            std::int32_t other = (a == low) ? b : a;
            if (!(mask >> other & 1) || other == low)
                continue;
            std::size_t rest = mask & ~(std::size_t(1) << low) &
                               ~(std::size_t(1) << other);
            double cand = best[rest] + e.weight;
            if (cand > best[mask]) {
                best[mask] = cand;
                choice[mask] = static_cast<std::int32_t>(i);
            }
        }
    }

    std::vector<std::int32_t> picks;
    std::size_t mask = full - 1;
    while (mask != 0) {
        std::int32_t c = choice[mask];
        if (c == -1) {
            mask &= mask - 1;
        } else {
            const auto& e = edges[static_cast<std::size_t>(c)];
            picks.push_back(c);
            mask &= ~(std::size_t(1) << e.u);
            mask &= ~(std::size_t(1) << e.v);
        }
    }
    std::sort(picks.begin(), picks.end());
    return picks;
}

double
matching_weight(const std::vector<WeightedEdge>& edges,
                const std::vector<std::int32_t>& picks)
{
    double total = 0.0;
    for (std::int32_t i : picks)
        total += edges[static_cast<std::size_t>(i)].weight;
    return total;
}

} // namespace permuq::graph
