#include "astar.h"

#include <algorithm>
#include <array>
#include <bit>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/telemetry/telemetry.h"

namespace permuq::solver {

namespace {

constexpr std::int32_t kMaxQubits = 16;
constexpr std::int32_t kMaxEdges = 128;

/** Remaining-gate bitmask over problem edge indices. */
struct EdgeMask
{
    std::array<std::uint64_t, 2> bits{0, 0};

    bool
    test(std::int32_t i) const
    {
        return bits[static_cast<std::size_t>(i >> 6)] >> (i & 63) & 1;
    }

    void
    set(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] |=
            std::uint64_t(1) << (i & 63);
    }

    void
    clear(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] &=
            ~(std::uint64_t(1) << (i & 63));
    }

    bool none() const { return bits[0] == 0 && bits[1] == 0; }

    /** Invoke fn(e) for every set edge index, ascending. */
    template <typename Fn>
    void
    for_each(Fn&& fn) const
    {
        for (std::size_t word = 0; word < bits.size(); ++word) {
            std::uint64_t b = bits[word];
            while (b != 0) {
                fn(static_cast<std::int32_t>(word * 64) +
                   std::countr_zero(b));
                b &= b - 1;
            }
        }
    }

    friend bool operator==(const EdgeMask&, const EdgeMask&) = default;
};

/** Packed (mapping, remaining) key for the closed set. */
struct StateKey
{
    std::array<std::uint8_t, kMaxQubits> mapping{}; // position -> logical
    EdgeMask remaining;

    friend bool operator==(const StateKey&, const StateKey&) = default;
};

struct StateKeyHash
{
    std::size_t
    operator()(const StateKey& k) const noexcept
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 0x100000001b3ULL;
            h ^= h >> 29;
        };
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < kMaxQubits; ++i) {
            packed = packed << 4 | (k.mapping[i] & 0xf);
            if (i % 16 == 15) {
                mix(packed);
                packed = 0;
            }
        }
        mix(packed);
        mix(k.remaining.bits[0]);
        mix(k.remaining.bits[1]);
        return static_cast<std::size_t>(h);
    }
};

/** One scheduled action within a transition (a single cycle). */
struct Action
{
    bool is_gate = false;    // gate vs swap
    std::int32_t edge = -1;  // problem edge index for gates
    PhysicalQubit p = 0, q = 0;
};

/**
 * Search node. Nodes live in one growing pool and reference their
 * transition's actions as an (offset, count) slice of a shared arena,
 * so expanding a state allocates nothing per child beyond amortized
 * vector growth; parents enable circuit reconstruction.
 */
struct Node
{
    StateKey key;
    Cycle g = 0;
    std::int32_t swaps = 0; // cumulative SWAPs (secondary objective)
    std::int32_t parent = -1;
    std::int32_t act_off = 0; // slice of the shared action arena
    std::int32_t act_count = 0;
};

/**
 * Monotone bucket queue over (f, g, swaps): pop order is f ascending,
 * then g descending (progress keeps the search fast), then SWAP count
 * ascending (a cosmetic secondary objective, since depth-optimal
 * packings otherwise fill idle qubits with gratuitous swaps). f and g
 * are small nonnegative cycle counts, so two bucket levels replace the
 * old comparison-based heap; within one (f, g) bucket a binary heap on
 * the SWAP count orders entries. Tie order among entries equal on all
 * three keys is unspecified (as it already was with the old
 * priority_queue), so which of several equally-optimal circuits is
 * reconstructed may differ between implementations — depth optimality
 * is unaffected.
 */
class OpenList
{
  public:
    void
    push(Cycle f, Cycle g, std::int32_t swaps, std::int32_t idx)
    {
        auto uf = static_cast<std::size_t>(f);
        if (uf >= buckets_.size()) {
            buckets_.resize(uf + 1);
            count_.resize(uf + 1, 0);
        }
        auto& by_g = buckets_[uf];
        if (static_cast<std::size_t>(g) >= by_g.size())
            by_g.resize(static_cast<std::size_t>(g) + 1);
        auto& bucket = by_g[static_cast<std::size_t>(g)];
        bucket.push_back({swaps, idx});
        std::push_heap(bucket.begin(), bucket.end(), kMoreSwaps);
        ++count_[uf];
        ++total_;
        // An inconsistent heuristic may produce a child f below the
        // current cursor; move the cursor back so pops stay monotone.
        if (f < cur_f_)
            cur_f_ = f;
    }

    bool empty() const { return total_ == 0; }

    /** Pop the best entry; returns its node index. */
    std::int32_t
    pop()
    {
        while (count_[static_cast<std::size_t>(cur_f_)] == 0)
            ++cur_f_;
        auto& by_g = buckets_[static_cast<std::size_t>(cur_f_)];
        std::size_t g = by_g.size();
        while (by_g[--g].empty()) {
        }
        auto& bucket = by_g[g];
        std::pop_heap(bucket.begin(), bucket.end(), kMoreSwaps);
        std::int32_t idx = bucket.back().second;
        bucket.pop_back();
        --count_[static_cast<std::size_t>(cur_f_)];
        --total_;
        return idx;
    }

  private:
    using Entry = std::pair<std::int32_t, std::int32_t>; // (swaps, idx)
    static constexpr auto kMoreSwaps = [](const Entry& a, const Entry& b) {
        return a.first > b.first; // min-heap on SWAP count
    };

    std::vector<std::vector<std::vector<Entry>>> buckets_; // [f][g]
    std::vector<std::int64_t> count_;                      // entries per f
    std::int64_t total_ = 0;
    Cycle cur_f_ = 0;
};

} // namespace

Cycle
pair_cost(std::int32_t deg_i, std::int32_t deg_j, std::int32_t d)
{
    panic_unless(d >= 1, "pair_cost requires distance >= 1");
    Cycle best = kUnreachable;
    for (std::int32_t x = 0; x <= d - 1; ++x)
        best = std::min(best,
                        std::max(deg_i + x, deg_j + (d - 1 - x)));
    return best;
}

SolverResult
solve_depth_optimal(const arch::CouplingGraph& device,
                    const graph::Graph& problem,
                    const circuit::Mapping& initial,
                    const SolverOptions& options)
{
    telemetry::ScopedSpan span("astar.solve");
    static telemetry::Counter& c_expanded =
        telemetry::counter("permuq.solver.astar.nodes_expanded");
    static telemetry::Counter& c_pruned =
        telemetry::counter("permuq.solver.astar.nodes_pruned");
    std::int32_t n = device.num_qubits();
    fatal_unless(n <= kMaxQubits, "solver limited to 16 qubits");
    fatal_unless(problem.num_edges() <= kMaxEdges,
                 "solver limited to 128 gates");
    fatal_unless(initial.num_logical() == problem.num_vertices() &&
                     initial.num_physical() == n,
                 "mapping does not match problem/device");
    fatal_unless(problem.num_vertices() == n,
                 "solver expects a fully mapped device");

    const auto& edges = problem.edges();
    const auto& dist = device.distances();

    // Heuristic h over a state (set-bit iteration + row pointers).
    auto heuristic = [&](const StateKey& key) -> Cycle {
        // position of each logical qubit.
        std::array<std::int32_t, kMaxQubits> pos{};
        for (std::int32_t p = 0; p < n; ++p)
            pos[key.mapping[static_cast<std::size_t>(p)]] = p;
        // remaining degree of each logical qubit.
        std::array<std::int32_t, kMaxQubits> deg{};
        key.remaining.for_each([&](std::int32_t e) {
            ++deg[static_cast<std::size_t>(
                edges[static_cast<std::size_t>(e)].a)];
            ++deg[static_cast<std::size_t>(
                edges[static_cast<std::size_t>(e)].b)];
        });
        Cycle h = 0;
        key.remaining.for_each([&](std::int32_t e) {
            const auto& edge = edges[static_cast<std::size_t>(e)];
            const std::uint16_t* row =
                dist.row(pos[static_cast<std::size_t>(edge.a)]);
            std::int32_t d = graph::DistanceMatrix::decode(
                row[static_cast<std::size_t>(
                    pos[static_cast<std::size_t>(edge.b)])]);
            h = std::max(h,
                         pair_cost(deg[static_cast<std::size_t>(edge.a)],
                                   deg[static_cast<std::size_t>(edge.b)],
                                   d));
        });
        return h;
    };

    // Node pool + action arena; best_node maps each reached state to
    // the pool index currently holding its best g. A node whose state
    // gets re-reached with a lower g is flagged superseded, so the pop
    // path tests one byte instead of re-hashing the 24-byte StateKey
    // on every expansion.
    std::vector<Node> nodes;
    std::vector<Action> arena;
    std::vector<std::uint8_t> superseded;
    std::unordered_map<StateKey, std::int32_t, StateKeyHash> best_node;
    nodes.reserve(1024);
    superseded.reserve(1024);

    Node root;
    for (std::int32_t p = 0; p < n; ++p) {
        LogicalQubit l = initial.logical_at(p);
        fatal_unless(l != kInvalidQubit, "solver needs all positions full");
        root.key.mapping[static_cast<std::size_t>(p)] =
            static_cast<std::uint8_t>(l);
    }
    for (std::int32_t e = 0; e < problem.num_edges(); ++e)
        root.key.remaining.set(e);
    nodes.push_back(root);
    superseded.push_back(0);
    best_node.emplace(root.key, 0);

    OpenList open;
    open.push(heuristic(root.key), 0, 0, 0);

    SolverResult result;
    const auto& couplers = device.couplers();
    std::int64_t work = 0;
    std::int64_t max_work = options.max_work;
    if (max_work == 0 && options.max_expansions > 0)
        max_work = 64 * options.max_expansions;

    // Per-expansion scratch, hoisted out of the loop.
    std::vector<Action> candidates;
    std::vector<Action> chosen;

    while (!open.empty()) {
        std::int32_t idx = open.pop();
        if (superseded[static_cast<std::size_t>(idx)]) {
            c_pruned.add();
            continue; // a cheaper route to this state was queued later
        }
        const StateKey key = nodes[static_cast<std::size_t>(idx)].key;
        const Cycle g = nodes[static_cast<std::size_t>(idx)].g;

        if (key.remaining.none()) {
            // Terminal: reconstruct the circuit from the action chain.
            result.solved = true;
            result.depth = g;
            std::vector<std::int32_t> chain;
            for (std::int32_t cur = idx; cur != -1;
                 cur = nodes[static_cast<std::size_t>(cur)].parent)
                chain.push_back(cur);
            std::reverse(chain.begin(), chain.end());
            circuit::Circuit circ(initial);
            for (std::int32_t node_idx : chain) {
                const Node& node = nodes[static_cast<std::size_t>(node_idx)];
                for (std::int32_t k = 0; k < node.act_count; ++k) {
                    const Action& act = arena[static_cast<std::size_t>(
                        node.act_off + k)];
                    if (act.is_gate)
                        circ.add_compute(act.p, act.q);
                    else
                        circ.add_swap(act.p, act.q);
                }
            }
            panic_unless(circ.depth() <= g,
                         "reconstructed circuit deeper than optimum");
            result.circuit = std::move(circ);
            return result;
        }

        ++result.expansions;
        c_expanded.add();
        if (options.max_expansions > 0 &&
            result.expansions > options.max_expansions)
            return result; // budget exhausted, result.solved == false
        if (max_work > 0 && work > max_work)
            return result; // enumeration budget exhausted

        // Collect candidate actions for this cycle.
        std::array<std::int32_t, kMaxQubits> pos{};
        for (std::int32_t p = 0; p < n; ++p)
            pos[key.mapping[static_cast<std::size_t>(p)]] = p;
        std::array<std::int32_t, kMaxQubits> deg{};
        key.remaining.for_each([&](std::int32_t e) {
            ++deg[static_cast<std::size_t>(
                edges[static_cast<std::size_t>(e)].a)];
            ++deg[static_cast<std::size_t>(
                edges[static_cast<std::size_t>(e)].b)];
        });

        candidates.clear();
        key.remaining.for_each([&](std::int32_t e) {
            const auto& edge = edges[static_cast<std::size_t>(e)];
            std::int32_t pa = pos[static_cast<std::size_t>(edge.a)];
            std::int32_t pb = pos[static_cast<std::size_t>(edge.b)];
            if (device.coupled(pa, pb))
                candidates.push_back({true, e, pa, pb});
        });
        std::size_t num_gate_actions = candidates.size();
        for (const auto& c : couplers) {
            LogicalQubit la = key.mapping[static_cast<std::size_t>(c.a)];
            LogicalQubit lb = key.mapping[static_cast<std::size_t>(c.b)];
            if (options.prune_dead_swaps &&
                deg[static_cast<std::size_t>(la)] == 0 &&
                deg[static_cast<std::size_t>(lb)] == 0)
                continue;
            candidates.push_back({false, -1, c.a, c.b});
        }

        // Enumerate all non-empty compatible action subsets (matchings
        // on qubits). With force_maximal_gates, a gate action may be
        // skipped only if one of its qubits is used by another action.
        chosen.clear();
        std::uint32_t used = 0;
        auto emit_child = [&] {
            if (chosen.empty())
                return;
            if (options.force_maximal_gates) {
                // Dominance: an op set that leaves an executable gate's
                // qubits entirely idle is never better than the same
                // set plus that gate (the gate must run eventually and
                // running it now costs nothing). Prune such children.
                for (std::size_t i = 0; i < num_gate_actions; ++i) {
                    const auto& gate = candidates[i];
                    std::uint32_t mask = (std::uint32_t(1) << gate.p) |
                                         (std::uint32_t(1) << gate.q);
                    if ((used & mask) == 0)
                        return;
                }
            }
            StateKey child = key;
            for (const auto& act : chosen) {
                if (act.is_gate) {
                    child.remaining.clear(act.edge);
                } else {
                    std::swap(
                        child.mapping[static_cast<std::size_t>(act.p)],
                        child.mapping[static_cast<std::size_t>(act.q)]);
                }
            }
            Cycle child_g = g + 1;
            auto [it, inserted] = best_node.try_emplace(child, -1);
            if (!inserted) {
                Node& prev = nodes[static_cast<std::size_t>(it->second)];
                if (prev.g <= child_g)
                    return;
                superseded[static_cast<std::size_t>(it->second)] = 1;
            }
            Node node;
            node.key = child;
            node.g = child_g;
            node.swaps = nodes[static_cast<std::size_t>(idx)].swaps;
            node.parent = idx;
            node.act_off = static_cast<std::int32_t>(arena.size());
            node.act_count = static_cast<std::int32_t>(chosen.size());
            for (const auto& act : chosen) {
                arena.push_back(act);
                if (!act.is_gate)
                    ++node.swaps;
            }
            std::int32_t node_idx =
                static_cast<std::int32_t>(nodes.size());
            it->second = node_idx;
            std::int32_t node_swaps = node.swaps;
            nodes.push_back(std::move(node));
            superseded.push_back(0);
            open.push(child_g + heuristic(child), child_g, node_swaps,
                      node_idx);
        };

        auto dfs = [&](auto&& self, std::size_t i) -> void {
            ++work;
            if (max_work > 0 && work > max_work)
                return; // partial enumeration; caller reports unsolved
            if (i == candidates.size()) {
                emit_child();
                return;
            }
            const auto& act = candidates[i];
            std::uint32_t mask = (std::uint32_t(1) << act.p) |
                                 (std::uint32_t(1) << act.q);
            bool can_take = (used & mask) == 0;
            // Option 1: take the action.
            if (can_take) {
                used |= mask;
                chosen.push_back(act);
                self(self, i + 1);
                chosen.pop_back();
                used &= ~mask;
            }
            // Option 2: skip it (emit_child applies the gate-idling
            // dominance check over the completed set).
            self(self, i + 1);
        };
        dfs(dfs, 0);
    }
    return result; // open exhausted without terminal (shouldn't happen)
}

} // namespace permuq::solver
