#include "astar.h"

#include <algorithm>
#include <array>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace permuq::solver {

namespace {

constexpr std::int32_t kMaxQubits = 16;
constexpr std::int32_t kMaxEdges = 128;

/** Remaining-gate bitmask over problem edge indices. */
struct EdgeMask
{
    std::array<std::uint64_t, 2> bits{0, 0};

    bool
    test(std::int32_t i) const
    {
        return bits[static_cast<std::size_t>(i >> 6)] >> (i & 63) & 1;
    }

    void
    set(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] |=
            std::uint64_t(1) << (i & 63);
    }

    void
    clear(std::int32_t i)
    {
        bits[static_cast<std::size_t>(i >> 6)] &=
            ~(std::uint64_t(1) << (i & 63));
    }

    bool none() const { return bits[0] == 0 && bits[1] == 0; }

    friend bool operator==(const EdgeMask&, const EdgeMask&) = default;
};

/** Packed (mapping, remaining) key for the closed set. */
struct StateKey
{
    std::array<std::uint8_t, kMaxQubits> mapping{}; // position -> logical
    EdgeMask remaining;

    friend bool operator==(const StateKey&, const StateKey&) = default;
};

struct StateKeyHash
{
    std::size_t
    operator()(const StateKey& k) const noexcept
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 0x100000001b3ULL;
            h ^= h >> 29;
        };
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < kMaxQubits; ++i) {
            packed = packed << 4 | (k.mapping[i] & 0xf);
            if (i % 16 == 15) {
                mix(packed);
                packed = 0;
            }
        }
        mix(packed);
        mix(k.remaining.bits[0]);
        mix(k.remaining.bits[1]);
        return static_cast<std::size_t>(h);
    }
};

/** One scheduled action within a transition (a single cycle). */
struct Action
{
    bool is_gate = false;    // gate vs swap
    std::int32_t edge = -1;  // problem edge index for gates
    PhysicalQubit p = 0, q = 0;
};

/** Search node; parents enable circuit reconstruction. */
struct Node
{
    StateKey key;
    Cycle g = 0;
    std::int32_t swaps = 0; // cumulative SWAPs (secondary objective)
    std::int32_t parent = -1;
    std::vector<Action> actions; // actions taken to reach this node
};

} // namespace

Cycle
pair_cost(std::int32_t deg_i, std::int32_t deg_j, std::int32_t d)
{
    panic_unless(d >= 1, "pair_cost requires distance >= 1");
    Cycle best = kUnreachable;
    for (std::int32_t x = 0; x <= d - 1; ++x)
        best = std::min(best,
                        std::max(deg_i + x, deg_j + (d - 1 - x)));
    return best;
}

SolverResult
solve_depth_optimal(const arch::CouplingGraph& device,
                    const graph::Graph& problem,
                    const circuit::Mapping& initial,
                    const SolverOptions& options)
{
    std::int32_t n = device.num_qubits();
    fatal_unless(n <= kMaxQubits, "solver limited to 16 qubits");
    fatal_unless(problem.num_edges() <= kMaxEdges,
                 "solver limited to 128 gates");
    fatal_unless(initial.num_logical() == problem.num_vertices() &&
                     initial.num_physical() == n,
                 "mapping does not match problem/device");
    fatal_unless(problem.num_vertices() == n,
                 "solver expects a fully mapped device");

    const auto& edges = problem.edges();
    const auto& dist = device.distances();

    // Heuristic h over a state.
    auto heuristic = [&](const StateKey& key) -> Cycle {
        // position of each logical qubit.
        std::array<std::int32_t, kMaxQubits> pos{};
        for (std::int32_t p = 0; p < n; ++p)
            pos[key.mapping[static_cast<std::size_t>(p)]] = p;
        // remaining degree of each logical qubit.
        std::array<std::int32_t, kMaxQubits> deg{};
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (key.remaining.test(e)) {
                ++deg[static_cast<std::size_t>(
                    edges[static_cast<std::size_t>(e)].a)];
                ++deg[static_cast<std::size_t>(
                    edges[static_cast<std::size_t>(e)].b)];
            }
        }
        Cycle h = 0;
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (!key.remaining.test(e))
                continue;
            const auto& edge = edges[static_cast<std::size_t>(e)];
            std::int32_t d =
                dist.at(pos[static_cast<std::size_t>(edge.a)],
                        pos[static_cast<std::size_t>(edge.b)]);
            h = std::max(h, pair_cost(deg[static_cast<std::size_t>(edge.a)],
                                      deg[static_cast<std::size_t>(edge.b)],
                                      d));
        }
        return h;
    };

    std::deque<Node> nodes;
    std::unordered_map<StateKey, Cycle, StateKeyHash> best_g;

    Node root;
    for (std::int32_t p = 0; p < n; ++p) {
        LogicalQubit l = initial.logical_at(p);
        fatal_unless(l != kInvalidQubit, "solver needs all positions full");
        root.key.mapping[static_cast<std::size_t>(p)] =
            static_cast<std::uint8_t>(l);
    }
    for (std::int32_t e = 0; e < problem.num_edges(); ++e)
        root.key.remaining.set(e);
    nodes.push_back(root);
    best_g.emplace(root.key, 0);

    // f, swaps, g, idx: depth-optimal first; among equal f prefer
    // deeper nodes (progress keeps the search fast), then fewer SWAPs
    // (a cosmetic secondary objective, since depth-optimal packings
    // otherwise fill idle qubits with gratuitous swaps).
    using QueueEntry = std::tuple<Cycle, std::int32_t, Cycle, std::int32_t>;
    auto cmp = [](const QueueEntry& a, const QueueEntry& b) {
        if (std::get<0>(a) != std::get<0>(b))
            return std::get<0>(a) > std::get<0>(b);
        if (std::get<2>(a) != std::get<2>(b))
            return std::get<2>(a) < std::get<2>(b);
        return std::get<1>(a) > std::get<1>(b);
    };
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)>
        open(cmp);
    open.emplace(heuristic(root.key), 0, 0, 0);

    SolverResult result;
    const auto& couplers = device.couplers();
    std::int64_t work = 0;
    std::int64_t max_work = options.max_work;
    if (max_work == 0 && options.max_expansions > 0)
        max_work = 64 * options.max_expansions;

    while (!open.empty()) {
        auto [f, swaps, g, idx] = open.top();
        (void)swaps;
        open.pop();
        StateKey key = nodes[static_cast<std::size_t>(idx)].key;
        if (g != best_g[key])
            continue; // stale entry

        if (key.remaining.none()) {
            // Terminal: reconstruct the circuit from the action chain.
            result.solved = true;
            result.depth = g;
            std::vector<std::int32_t> chain;
            for (std::int32_t cur = idx; cur != -1;
                 cur = nodes[static_cast<std::size_t>(cur)].parent)
                chain.push_back(cur);
            std::reverse(chain.begin(), chain.end());
            circuit::Circuit circ(initial);
            for (std::int32_t node_idx : chain) {
                for (const auto& act :
                     nodes[static_cast<std::size_t>(node_idx)].actions) {
                    if (act.is_gate)
                        circ.add_compute(act.p, act.q);
                    else
                        circ.add_swap(act.p, act.q);
                }
            }
            panic_unless(circ.depth() <= g,
                         "reconstructed circuit deeper than optimum");
            result.circuit = std::move(circ);
            return result;
        }

        ++result.expansions;
        if (options.max_expansions > 0 &&
            result.expansions > options.max_expansions)
            return result; // budget exhausted, result.solved == false
        if (max_work > 0 && work > max_work)
            return result; // enumeration budget exhausted

        // Collect candidate actions for this cycle.
        std::array<std::int32_t, kMaxQubits> pos{};
        for (std::int32_t p = 0; p < n; ++p)
            pos[key.mapping[static_cast<std::size_t>(p)]] = p;
        std::array<std::int32_t, kMaxQubits> deg{};
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (key.remaining.test(e)) {
                ++deg[static_cast<std::size_t>(
                    edges[static_cast<std::size_t>(e)].a)];
                ++deg[static_cast<std::size_t>(
                    edges[static_cast<std::size_t>(e)].b)];
            }
        }

        std::vector<Action> candidates;
        for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
            if (!key.remaining.test(e))
                continue;
            const auto& edge = edges[static_cast<std::size_t>(e)];
            std::int32_t pa = pos[static_cast<std::size_t>(edge.a)];
            std::int32_t pb = pos[static_cast<std::size_t>(edge.b)];
            if (device.coupled(pa, pb))
                candidates.push_back({true, e, pa, pb});
        }
        std::size_t num_gate_actions = candidates.size();
        for (const auto& c : couplers) {
            LogicalQubit la = key.mapping[static_cast<std::size_t>(c.a)];
            LogicalQubit lb = key.mapping[static_cast<std::size_t>(c.b)];
            if (options.prune_dead_swaps &&
                deg[static_cast<std::size_t>(la)] == 0 &&
                deg[static_cast<std::size_t>(lb)] == 0)
                continue;
            candidates.push_back({false, -1, c.a, c.b});
        }

        // Enumerate all non-empty compatible action subsets (matchings
        // on qubits). With force_maximal_gates, a gate action may be
        // skipped only if one of its qubits is used by another action.
        std::vector<Action> chosen;
        std::uint32_t used = 0;
        auto emit_child = [&] {
            if (chosen.empty())
                return;
            if (options.force_maximal_gates) {
                // Dominance: an op set that leaves an executable gate's
                // qubits entirely idle is never better than the same
                // set plus that gate (the gate must run eventually and
                // running it now costs nothing). Prune such children.
                for (std::size_t i = 0; i < num_gate_actions; ++i) {
                    const auto& gate = candidates[i];
                    std::uint32_t mask = (std::uint32_t(1) << gate.p) |
                                         (std::uint32_t(1) << gate.q);
                    if ((used & mask) == 0)
                        return;
                }
            }
            StateKey child = key;
            for (const auto& act : chosen) {
                if (act.is_gate) {
                    child.remaining.clear(act.edge);
                } else {
                    std::swap(
                        child.mapping[static_cast<std::size_t>(act.p)],
                        child.mapping[static_cast<std::size_t>(act.q)]);
                }
            }
            Cycle child_g = g + 1;
            auto it = best_g.find(child);
            if (it != best_g.end() && it->second <= child_g)
                return;
            best_g[child] = child_g;
            Node node;
            node.key = child;
            node.g = child_g;
            node.swaps = nodes[static_cast<std::size_t>(idx)].swaps;
            for (const auto& act : chosen)
                if (!act.is_gate)
                    ++node.swaps;
            node.parent = idx;
            node.actions = chosen;
            nodes.push_back(std::move(node));
            open.emplace(child_g + heuristic(child), node.swaps, child_g,
                         static_cast<std::int32_t>(nodes.size()) - 1);
        };

        auto dfs = [&](auto&& self, std::size_t i) -> void {
            ++work;
            if (max_work > 0 && work > max_work)
                return; // partial enumeration; caller reports unsolved
            if (i == candidates.size()) {
                emit_child();
                return;
            }
            const auto& act = candidates[i];
            std::uint32_t mask = (std::uint32_t(1) << act.p) |
                                 (std::uint32_t(1) << act.q);
            bool can_take = (used & mask) == 0;
            // Option 1: take the action.
            if (can_take) {
                used |= mask;
                chosen.push_back(act);
                self(self, i + 1);
                chosen.pop_back();
                used &= ~mask;
            }
            // Option 2: skip it (emit_child applies the gate-idling
            // dominance check over the completed set).
            self(self, i + 1);
        };
        dfs(dfs, 0);
    }
    return result; // open exhausted without terminal (shouldn't happen)
}

} // namespace permuq::solver
