/**
 * @file
 * The depth-optimal A* solver (paper §4).
 *
 * Searches over circuit states — (qubit mapping, set of un-executed
 * gates) at cycle boundaries — where each transition schedules one
 * cycle's worth of parallel actions: executable problem gates and/or
 * SWAPs on disjoint coupled pairs. The priority function
 *   f(v) = g(v) + h(v),  h(v) = max over remaining edges of
 *   cost(qi,qj) = min_x max(deg(qi)+x, deg(qj)+(d-1-x))
 * is admissible (Theorems 1-2), so the first terminal node popped is
 * depth-optimal.
 *
 * The solver exists to *discover* patterns on small instances (1x6
 * line, 2x4 grid, two-unit Sycamore/hexagon); the scalable compiler
 * generalizes its solutions rather than calling it at scale.
 */
#ifndef PERMUQ_SOLVER_ASTAR_H
#define PERMUQ_SOLVER_ASTAR_H

#include <cstdint>
#include <optional>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "circuit/mapping.h"
#include "graph/graph.h"

namespace permuq::solver {

/** Tunables for one solve. */
struct SolverOptions
{
    /**
     * Always schedule every executable gate that fits the chosen op
     * set (prunes op sets that leave an executable gate idle while its
     * qubits idle). Large speedup; tests confirm it preserves the
     * optimum on the instances the paper solves.
     */
    bool force_maximal_gates = true;
    /** Skip swaps whose both endpoints carry no remaining gates. */
    bool prune_dead_swaps = true;
    /** Abort after this many node expansions (0 = unlimited). */
    std::int64_t max_expansions = 0;
    /**
     * Abort after this many units of enumeration work (DFS steps of
     * the per-cycle action-subset enumeration); dense instances can
     * explode inside a single expansion, so the expansion budget alone
     * does not bound wall-clock time. 0 derives 64 * max_expansions
     * (unlimited when max_expansions is also 0).
     */
    std::int64_t max_work = 0;
};

/** Result of a solve. */
struct SolverResult
{
    /** Whether a terminal node was reached within budget. */
    bool solved = false;
    /** Optimal depth in cycles (valid when solved). */
    Cycle depth = 0;
    /** A depth-optimal compiled circuit (valid when solved). */
    circuit::Circuit circuit;
    /** Number of A* node expansions performed. */
    std::int64_t expansions = 0;
};

/**
 * Find a depth-minimal SWAP-inserted circuit for @p problem on
 * @p device starting from @p initial (Definition 2). The problem must
 * be small (at most 16 qubits / 128 edges).
 */
SolverResult solve_depth_optimal(const arch::CouplingGraph& device,
                                 const graph::Graph& problem,
                                 const circuit::Mapping& initial,
                                 const SolverOptions& options = {});

/**
 * The admissible pair cost of Definition 3/Eq. 2:
 * min over x in [0, d-1] of max(deg_i + x, deg_j + d - 1 - x),
 * where d is the current distance between the two qubits' positions
 * and deg counts each qubit's remaining gates.
 */
Cycle pair_cost(std::int32_t deg_i, std::int32_t deg_j, std::int32_t d);

} // namespace permuq::solver

#endif // PERMUQ_SOLVER_ASTAR_H
