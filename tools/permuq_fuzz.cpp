/**
 * @file
 * permuq-fuzz — randomized differential testing of the compilers.
 *
 * Modes:
 *   (default)        run N seeded random configurations through every
 *                    applicable check; failures are shrunk and written
 *                    as reproducer files into the corpus directory.
 *   --replay FILE    re-run one reproducer; exits non-zero while the
 *                    failure still reproduces.
 *   --inject         mutation-testing mode: for every configuration,
 *                    inject each known-miscompile mutation and demand
 *                    the checkers flag it (a missed mutant is a checker
 *                    false negative and fails the run).
 *   --protocol       replay random/mutated byte streams at the permuqd
 *                    wire codec (frame decoder + request parser); any
 *                    crash, hang, or accepted-garbage is a failure.
 *
 * Everything is deterministic from --seed; the tool never reads the
 * clock except to honor --time-budget.
 */
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <random>

#include "common/log/flight_recorder.h"
#include "service/protocol.h"
#include "verify/fuzz.h"
#include "verify/mutate.h"

namespace {

using namespace permuq;

struct CliOptions
{
    std::uint64_t seed = 1;
    std::int64_t configs = 200;
    double time_budget_seconds = 0.0; // 0 = unlimited
    std::int32_t max_vertices = 10;
    std::string corpus = "tests/corpus";
    std::string replay;
    /** Non-empty: pin every "ours" configuration to this compiler
     *  tier (fast|balanced|best) instead of the drawn one. */
    std::string force_tier;
    bool inject = false;
    /** Fuzz the permuqd wire codec instead of the compilers. */
    bool protocol = false;
    bool verbose = false;
    /** Deliberately crash (SIGSEGV) after noting a few records, to
     *  exercise the flight-recorder dump path end to end (CI uses
     *  this to produce a crash artifact). */
    bool crash_test = false;
};

int
usage(int code)
{
    std::ostream& out = code == 0 ? std::cout : std::cerr;
    out << "usage: permuq-fuzz [options]\n"
           "  --seed N          base seed of the config stream "
           "(default 1)\n"
           "  --configs N       number of configurations (default 200)\n"
           "  --time-budget S   stop after S wall-clock seconds\n"
           "  --max-qubits N    largest problem size drawn "
           "(default 10)\n"
           "  --corpus DIR      where reproducers are written "
           "(default tests/corpus)\n"
           "  --replay FILE     re-run one reproducer file and exit\n"
           "  --force-tier T    pin \"ours\" configs to compiler tier "
           "fast|balanced|best\n"
           "  --inject          mutation-testing mode (checkers must "
           "catch every injected miscompile)\n"
           "  --protocol        fuzz the permuqd wire codec with "
           "mutated byte streams (--configs streams)\n"
           "  --crash-test      raise SIGSEGV to exercise the flight-"
           "recorder crash dump\n"
           "  --verbose         print every configuration\n"
           "  --help            this text\n";
    return code;
}

bool
parse_cli(int argc, char** argv, CliOptions& options, int& exit_code)
{
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&](auto parse) {
            if (++i >= argc) {
                std::cerr << "permuq-fuzz: " << flag
                          << " needs a value\n";
                exit_code = usage(2);
                return false;
            }
            return parse(std::string(argv[i]));
        };
        bool ok = true;
        if (flag == "--help" || flag == "-h") {
            exit_code = usage(0);
            return false;
        } else if (flag == "--seed") {
            ok = value([&](const std::string& v) {
                options.seed = std::strtoull(v.c_str(), nullptr, 10);
                return true;
            });
        } else if (flag == "--configs") {
            ok = value([&](const std::string& v) {
                options.configs = std::atoll(v.c_str());
                return true;
            });
        } else if (flag == "--time-budget") {
            ok = value([&](const std::string& v) {
                options.time_budget_seconds = std::atof(v.c_str());
                return true;
            });
        } else if (flag == "--max-qubits") {
            ok = value([&](const std::string& v) {
                options.max_vertices = std::atoi(v.c_str());
                return true;
            });
        } else if (flag == "--corpus") {
            ok = value([&](const std::string& v) {
                options.corpus = v;
                return true;
            });
        } else if (flag == "--replay") {
            ok = value([&](const std::string& v) {
                options.replay = v;
                return true;
            });
        } else if (flag == "--force-tier") {
            ok = value([&](const std::string& v) {
                if (v != "fast" && v != "balanced" && v != "best") {
                    std::cerr << "permuq-fuzz: --force-tier needs "
                                 "fast, balanced, or best\n";
                    exit_code = usage(2);
                    return false;
                }
                options.force_tier = v;
                return true;
            });
        } else if (flag == "--inject") {
            options.inject = true;
        } else if (flag == "--protocol") {
            options.protocol = true;
        } else if (flag == "--crash-test") {
            options.crash_test = true;
        } else if (flag == "--verbose") {
            options.verbose = true;
        } else {
            std::cerr << "permuq-fuzz: unknown flag " << flag << "\n";
            exit_code = usage(2);
            return false;
        }
        if (!ok)
            return false;
    }
    return true;
}

std::string
describe(const verify::FuzzConfig& config)
{
    std::ostringstream os;
    os << config.compiler << " on " << config.arch << ", "
       << config.num_vertices << " vertices / " << config.edges.size()
       << " edges";
    if (config.compiler == "ours" && config.tier != "best")
        os << ", tier " << config.tier;
    if (config.inject != "none")
        os << ", inject " << config.inject;
    return os.str();
}

int
replay_mode(const CliOptions& options)
{
    std::ifstream in(options.replay);
    if (!in) {
        std::cerr << "permuq-fuzz: cannot open " << options.replay
                  << "\n";
        return 2;
    }
    verify::FuzzConfig config;
    std::string error;
    if (!verify::parse_reproducer(in, config, &error)) {
        std::cerr << "permuq-fuzz: " << options.replay << ": " << error
                  << "\n";
        return 2;
    }
    std::cout << "replaying " << describe(config) << "\n";
    flight::note(flight::Kind::Note, "fuzz.config", describe(config), 0);
    const auto result = verify::run_config(config);
    if (result.ok) {
        std::cout << "PASS: all checks clean (tier A "
                  << (result.tier_a_ran ? "ran" : "skipped") << ")\n";
        return 0;
    }
    std::cout << "FAIL [" << result.kind << "] " << result.failure
              << "\n";
    return 1;
}

/** Write a shrunk reproducer; returns the path (or "" on I/O error). */
std::string
write_reproducer(const CliOptions& options,
                 const verify::FuzzConfig& config,
                 const verify::CheckResult& result, std::int64_t index)
{
    std::error_code ec;
    std::filesystem::create_directories(options.corpus, ec);
    std::ostringstream name;
    name << "fuzz-" << options.seed << "-" << index << ".repro";
    const auto path =
        std::filesystem::path(options.corpus) / name.str();
    std::ofstream out(path);
    if (!out)
        return "";
    out << verify::serialize_reproducer(config, result);
    return path.string();
}

/**
 * Codec-fuzzing mode (`--protocol`): build one plausible request
 * frame per configuration, mutate its bytes in a drawn way (bit
 * flips, truncation, oversized/garbage length prefixes, spliced
 * junk, deep nesting), and push the stream through FrameDecoder +
 * parse_request in randomly sized feed chunks — exactly the path a
 * permuqd reader thread runs on hostile input. The codec must always
 * answer with NeedMore / a frame / a typed error; any crash, hang,
 * or out-of-contract acceptance is a failure. Deterministic from
 * --seed.
 */
int
protocol_mode(const CliOptions& options)
{
    using service::FrameDecoder;
    std::int64_t frames_seen = 0, errors_seen = 0, parsed_ok = 0;
    for (std::int64_t index = 0; index < options.configs; ++index) {
        std::mt19937_64 rng(options.seed * 0x9e3779b97f4a7c15ull +
                            static_cast<std::uint64_t>(index));
        auto draw = [&](std::uint64_t bound) {
            return static_cast<std::size_t>(rng() % bound);
        };

        // A plausible compile/ping request as the mutation base.
        service::Request request;
        request.id = static_cast<std::int64_t>(draw(1 << 20));
        const std::size_t shape = draw(4);
        if (shape == 0)
            request.type = "ping";
        request.problem_n = static_cast<std::int32_t>(4 + draw(16));
        request.density = 0.1 + 0.05 * static_cast<double>(draw(10));
        request.seed = rng();
        request.tier = draw(2) ? "fast" : "balanced";
        std::string stream =
            service::encode_frame(service::build_request_payload(request));

        // Mutate the stream.
        switch (draw(7)) {
        case 0: // bit flips in the payload (usually breaks the JSON)
            for (std::size_t flips = 1 + draw(8); flips > 0; --flips)
                stream[4 + draw(stream.size() - 4)] ^=
                    static_cast<char>(1 << draw(8));
            break;
        case 1: // truncated frame (drop the tail)
            stream.resize(4 + draw(stream.size() - 4));
            break;
        case 2: { // oversized length prefix
            const std::uint32_t huge =
                static_cast<std::uint32_t>(service::kMaxFrameBytes) +
                1 + static_cast<std::uint32_t>(draw(1u << 30));
            stream[0] = static_cast<char>((huge >> 24) & 0xFF);
            stream[1] = static_cast<char>((huge >> 16) & 0xFF);
            stream[2] = static_cast<char>((huge >> 8) & 0xFF);
            stream[3] = static_cast<char>(huge & 0xFF);
            break;
        }
        case 3: { // garbage bytes, no framing at all
            stream.clear();
            for (std::size_t n = 1 + draw(512); n > 0; --n)
                stream.push_back(static_cast<char>(rng()));
            break;
        }
        case 4: { // deeply nested JSON in a well-formed frame
            std::string bomb = "{\"v\":1,\"id\":0,\"a\":";
            const std::size_t depth = 32 + draw(128);
            bomb.append(depth, '[');
            bomb += "0";
            bomb.append(depth, ']');
            bomb += "}";
            stream = service::encode_frame(bomb);
            break;
        }
        case 5: { // two frames, the second's prefix corrupted
            std::string second = stream;
            second[draw(4)] ^= static_cast<char>(0xFF);
            stream += second;
            break;
        }
        default: // well-formed (the decoder must accept it verbatim)
            break;
        }

        // Feed in randomly sized chunks; drain after every feed.
        FrameDecoder decoder;
        bool dead = false;
        std::size_t offset = 0;
        while (offset < stream.size() && !dead) {
            const std::size_t chunk =
                std::min(stream.size() - offset, 1 + draw(97));
            decoder.feed(stream.data() + offset, chunk);
            offset += chunk;
            for (;;) {
                std::string payload, error;
                const auto status = decoder.next(payload, error);
                if (status == FrameDecoder::Status::NeedMore)
                    break;
                if (status == FrameDecoder::Status::Error) {
                    ++errors_seen;
                    dead = true; // connection would be closed
                    break;
                }
                ++frames_seen;
                service::Request parsed;
                service::ErrorKind kind;
                std::string message;
                if (service::parse_request(payload, parsed, kind,
                                           message))
                    ++parsed_ok;
            }
        }
    }
    std::cout << "protocol: " << options.configs << " stream(s), "
              << frames_seen << " frame(s) decoded, " << parsed_ok
              << " request(s) parsed, " << errors_seen
              << " poisoned stream(s), 0 crashes\n";
    return 0;
}

int
fuzz_mode(const CliOptions& options)
{
    const auto start = std::chrono::steady_clock::now();
    auto out_of_time = [&] {
        if (options.time_budget_seconds <= 0.0)
            return false;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() >= options.time_budget_seconds;
    };

    std::int64_t ran = 0, failures = 0, missed_mutants = 0,
                 unsupported = 0, tier_a_runs = 0;
    for (std::int64_t index = 0; index < options.configs; ++index) {
        if (out_of_time()) {
            std::cout << "time budget reached after " << ran
                      << " configuration(s)\n";
            break;
        }
        auto config = verify::random_config(options.seed, index,
                                            options.max_vertices);
        if (!options.force_tier.empty() && config.compiler == "ours")
            config.tier = options.force_tier;
        if (options.verbose)
            std::cout << "[" << index << "] " << describe(config)
                      << "\n";

        if (options.inject) {
            // Every mutation must be caught by a semantic tier.
            for (verify::Mutation m : verify::kAllMutations) {
                config.inject = verify::to_string(m);
                config.inject_seed = options.seed + 977 *
                    static_cast<std::uint64_t>(index);
                ++ran;
                flight::note(flight::Kind::Note, "fuzz.config",
                             describe(config), index);
                const auto result = verify::run_config(config);
                if (result.kind == "inject-unsupported") {
                    ++unsupported;
                    continue;
                }
                if (result.tier_a_ran)
                    ++tier_a_runs;
                const bool caught = !result.ok &&
                                    (result.kind == "tier-a" ||
                                     result.kind == "tier-b");
                if (!caught) {
                    ++missed_mutants;
                    std::cout << "MISSED MUTANT [" << index << "] "
                              << describe(config) << ": result "
                              << (result.ok ? "ok"
                                            : result.kind + ": " +
                                                  result.failure)
                              << "\n";
                }
            }
            continue;
        }

        ++ran;
        // Note the config before running it: if the compiler crashes,
        // the flight dump identifies the configuration that killed it.
        flight::note(flight::Kind::Note, "fuzz.config", describe(config),
                     index);
        const auto result = verify::run_config(config);
        if (result.tier_a_ran)
            ++tier_a_runs;
        if (result.ok)
            continue;
        ++failures;
        std::cout << "FAIL [" << index << "] " << describe(config)
                  << "\n  [" << result.kind << "] " << result.failure
                  << "\n";
        std::int64_t shrink_steps = 0;
        const auto shrunk =
            verify::shrink_config(config, result, &shrink_steps);
        const auto shrunk_result = verify::run_config(shrunk);
        const auto path =
            write_reproducer(options, shrunk, shrunk_result, index);
        std::cout << "  shrunk to " << shrunk.edges.size()
                  << " edge(s) in " << shrink_steps << " step(s)";
        if (!path.empty())
            std::cout << "; reproducer: " << path;
        std::cout << "\n";
    }

    std::cout << "ran " << ran << " configuration(s), " << tier_a_runs
              << " with the exact tier";
    if (options.inject) {
        std::cout << ", " << unsupported
                  << " mutation(s) unsupported, " << missed_mutants
                  << " missed mutant(s)\n";
        return missed_mutants == 0 ? 0 : 1;
    }
    std::cout << ", " << failures << " failure(s)\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    flight::install_crash_handler();
    CliOptions options;
    int exit_code = 0;
    if (!parse_cli(argc, argv, options, exit_code))
        return exit_code;
    if (options.crash_test) {
        flight::note(flight::Kind::Note, "fuzz.crash_test",
                     "deliberate SIGSEGV requested via --crash-test", 0);
        std::raise(SIGSEGV);
        return 3; // unreachable: the handler dumps and re-raises
    }
    if (options.protocol)
        return protocol_mode(options);
    if (!options.replay.empty())
        return replay_mode(options);
    return fuzz_mode(options);
}
