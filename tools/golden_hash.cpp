// Throwaway: prints FNV-1a hashes of compiled circuits for a fixed
// case matrix; used to freeze pre-refactor golden values.
#include <cstdio>

#include "arch/coupling_graph.h"
#include "core/compiler.h"
#include "problem/generators.h"

using namespace permuq;

static std::uint64_t
circuit_hash(const circuit::Circuit& c)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const auto& op : c.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.p)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.q)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.cycle)));
    }
    mix(static_cast<std::uint64_t>(c.depth()));
    mix(static_cast<std::uint64_t>(c.num_compute()));
    mix(static_cast<std::uint64_t>(c.num_swaps()));
    for (std::int32_t l = 0; l < c.final_mapping().num_logical(); ++l)
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(c.final_mapping().physical_of(l))));
    return h;
}

int
main()
{
    struct Case
    {
        arch::ArchKind kind;
        std::int32_t n;
        double density;
        std::uint64_t seed;
        bool crosstalk;
        bool noise;
    };
    const Case cases[] = {
        {arch::ArchKind::HeavyHex, 32, 0.3, 17, false, false},
        {arch::ArchKind::HeavyHex, 64, 0.5, 29, false, false},
        {arch::ArchKind::Sycamore, 64, 0.3, 7, false, false},
        {arch::ArchKind::Grid, 36, 0.4, 11, false, false},
        {arch::ArchKind::Hexagon, 36, 0.3, 13, false, false},
        {arch::ArchKind::Line, 16, 0.4, 5, false, false},
        {arch::ArchKind::Grid, 25, 0.5, 3, true, false},
        {arch::ArchKind::HeavyHex, 32, 0.3, 19, false, true},
        {arch::ArchKind::Custom, 0, 0, 0, false, false}, // ring-with-chords
    };
    for (const auto& c : cases) {
        core::CompilerOptions options;
        arch::CouplingGraph device =
            c.kind == arch::ArchKind::Custom
                ? [] {
                      std::vector<VertexPair> couplers;
                      for (std::int32_t i = 0; i < 12; ++i)
                          couplers.emplace_back(i, (i + 1) % 12);
                      couplers.emplace_back(0, 6);
                      couplers.emplace_back(3, 9);
                      couplers.emplace_back(2, 7);
                      return arch::make_custom(12, couplers,
                                               "ring-with-chords");
                  }()
                : arch::smallest_arch(c.kind, c.n);
        auto problem =
            c.kind == arch::ArchKind::Custom
                ? problem::random_graph(12, 0.4, 43)
                : problem::random_graph(c.n, c.density, c.seed);
        options.crosstalk_aware = c.crosstalk;
        auto noise =
            arch::NoiseModel::calibrated(device, 8, 1e-2, 2e-2, 1.2);
        if (c.noise)
            options.noise = &noise;
        auto result = core::compile(device, problem, options);
        std::printf("{\"%s\", %d, %.1f, %lluull, %s, %s, "
                    "0x%016llxull},\n",
                    arch::to_string(c.kind).c_str(), c.n, c.density,
                    static_cast<unsigned long long>(c.seed),
                    c.crosstalk ? "true" : "false",
                    c.noise ? "true" : "false",
                    static_cast<unsigned long long>(
                        circuit_hash(result.circuit)));
    }
    return 0;
}
