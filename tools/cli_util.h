/**
 * @file
 * Small helpers shared by the PermuQ command-line tools (permuqc,
 * permuqd, permuq-client): the did-you-mean flag hint and the
 * PERMUQ_* env-knob report. Header-only; tools/ is not a library.
 */
#ifndef PERMUQ_TOOLS_CLI_UTIL_H
#define PERMUQ_TOOLS_CLI_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace permuq::tools {

/** Levenshtein distance (one-row DP). */
inline std::size_t
edit_distance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t cur = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
            prev = cur;
        }
    }
    return row[b.size()];
}

/** The closest known flag within 3 edits, or nullptr. */
inline const char*
closest_flag(const std::string& arg, const char* const* flags,
             std::size_t count)
{
    const char* best = nullptr;
    std::size_t best_d = 4; // hint only within 3 edits
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t d = edit_distance(arg, flags[i]);
        if (d < best_d) {
            best_d = d;
            best = flags[i];
        }
    }
    return best;
}

template <std::size_t N>
inline const char*
closest_flag(const std::string& arg, const char* const (&flags)[N])
{
    return closest_flag(arg, flags, N);
}

/** One "  NAME = value|(unset)" line per service env knob — the
 *  shared tail of every tool's --version env report. */
inline void
print_service_env_knobs(std::FILE* out)
{
    for (const char* knob :
         {"PERMUQ_SERVICE_PORT", "PERMUQ_SERVICE_QUEUE_DEPTH",
          "PERMUQ_SERVICE_CACHE_BUDGET"}) {
        const char* value = std::getenv(knob);
        std::fprintf(out, "  %-27s = %s\n", knob,
                     value ? value : "(unset)");
    }
}

/** Env-integer with default (for PERMUQ_SERVICE_* knobs). */
inline long long
env_int(const char* name, long long fallback)
{
    const char* value = std::getenv(name);
    return value != nullptr ? std::atoll(value) : fallback;
}

} // namespace permuq::tools

#endif // PERMUQ_TOOLS_CLI_UTIL_H
