/**
 * @file
 * permuq-client — command-line client for the permuqd compile daemon.
 *
 *   permuq-client --port 7411 --ping
 *   permuq-client --port 7411 --qubits 64 --tier fast --qasm out.qasm
 *   permuq-client --port 7411 --count 8 --sleep 200 --expect-overload
 *   permuq-client --port 7411 --metrics prom.txt
 *   permuq-client --port 7411 --shutdown
 *
 * One process == one connection. --count pipelines N copies of the
 * compile request (ids 1..N) before reading any response, which is
 * how CI forces a deterministic `overloaded` rejection out of a
 * --workers 1 --queue-depth 1 daemon. Exit status: 0 on success, 1
 * on any unexpected error frame or transport failure, 2 on usage
 * errors; with --expect-overload the meaning inverts for overload
 * frames (at least one must arrive).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.h"
#include "common/log/flight_recorder.h"
#include "service/client.h"
#include "service/protocol.h"

#ifndef PERMUQ_VERSION
#define PERMUQ_VERSION "unknown"
#endif

namespace {

using namespace permuq;

constexpr const char* kKnownFlags[] = {
    "--port",     "--ping",        "--metrics",   "--shutdown",
    "--arch",     "--qubits",      "--density",   "--seed",
    "--input",    "--tier",        "--alpha",     "--crosstalk",
    "--full-qaoa", "--shard",      "--shard-margin",
    "--count",    "--sleep",       "--qasm",      "--report",
    "--expect-overload", "--version", "--help",
};

void
usage(std::FILE* out)
{
    std::fprintf(
        out,
        "usage: permuq-client [options]\n"
        "  --port P          daemon port (default: "
        "PERMUQ_SERVICE_PORT, else 7411)\n"
        "  --ping            round-trip a ping and exit\n"
        "  --metrics FILE    fetch the Prometheus exposition into "
        "FILE ('-' = stdout)\n"
        "  --shutdown        ask the daemon to shut down\n"
        "  --arch A          heavyhex|sycamore|grid|hexagon|line|"
        "lattice3d|mumbai\n"
        "  --qubits N        random-problem size (default 64)\n"
        "  --density D       random-graph density (default 0.3)\n"
        "  --seed S          random-graph seed (default 1)\n"
        "  --input FILE      problem edge list ('u v' per line) "
        "instead\n"
        "  --tier T          fast|balanced|best|auto (default auto)\n"
        "  --alpha A         selector depth-vs-error weight\n"
        "  --crosstalk       crosstalk-aware scheduling\n"
        "  --full-qaoa       QASM includes prelude, mixer, measures\n"
        "  --shard K         region-sharded compilation\n"
        "  --shard-margin W  minimum extra band height\n"
        "  --count N         pipeline N copies (ids 1..N) before "
        "reading\n"
        "  --sleep MS        per-request debug sleep (overload "
        "tests)\n"
        "  --qasm FILE       write the (last) response plan QASM\n"
        "  --report FILE     write the (last) response report JSON\n"
        "  --expect-overload succeed only if >= 1 response was the "
        "typed\n"
        "                    `overloaded` error\n"
        "  --version         print the version and env knobs, exit\n"
        "  --help            print this message and exit\n");
}

bool
load_edges(const std::string& path, service::Request& request,
           std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::int32_t max_vertex = -1;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::int32_t u, v;
        if (fields >> u >> v) {
            request.edges.push_back({u, v});
            max_vertex = std::max({max_vertex, u, v});
        }
    }
    request.has_edges = true;
    request.problem_n = max_vertex + 1;
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    flight::install_crash_handler();
    int port = static_cast<int>(
        tools::env_int("PERMUQ_SERVICE_PORT", 7411));
    service::Request request;
    request.problem_n = 64;
    std::string mode = "compile";
    std::string input, qasm_out, report_out, metrics_out;
    std::int64_t count = 1;
    bool expect_overload = false;

    for (int i = 1; i < argc; ++i) {
        auto is = [&](const char* flag) {
            return std::strcmp(argv[i], flag) == 0;
        };
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "permuq-client: %s needs a "
                                     "value\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (is("--help")) {
            usage(stdout);
            return 0;
        } else if (is("--version")) {
            std::printf("permuq-client %s\n", PERMUQ_VERSION);
            tools::print_service_env_knobs(stdout);
            return 0;
        } else if (is("--port"))
            port = std::atoi(value());
        else if (is("--ping"))
            mode = "ping";
        else if (is("--metrics")) {
            mode = "metrics";
            metrics_out = value();
        } else if (is("--shutdown"))
            mode = "shutdown";
        else if (is("--arch"))
            request.arch = value();
        else if (is("--qubits"))
            request.problem_n = std::atoi(value());
        else if (is("--density"))
            request.density = std::atof(value());
        else if (is("--seed"))
            request.seed =
                static_cast<std::uint64_t>(std::atoll(value()));
        else if (is("--input"))
            input = value();
        else if (is("--tier")) {
            request.tier = value();
            if (request.tier != "fast" && request.tier != "balanced" &&
                request.tier != "best" && request.tier != "auto") {
                std::fprintf(stderr,
                             "permuq-client: bad --tier %s (want "
                             "fast|balanced|best|auto)\n",
                             request.tier.c_str());
                return 2;
            }
        } else if (is("--alpha"))
            request.alpha = std::atof(value());
        else if (is("--crosstalk"))
            request.crosstalk = true;
        else if (is("--full-qaoa"))
            request.full_qaoa = true;
        else if (is("--shard"))
            request.shard = std::atoi(value());
        else if (is("--shard-margin"))
            request.shard_margin = std::atoi(value());
        else if (is("--count"))
            count = std::atoll(value());
        else if (is("--sleep"))
            request.debug_sleep_ms = std::atoi(value());
        else if (is("--qasm"))
            qasm_out = value();
        else if (is("--report"))
            report_out = value();
        else if (is("--expect-overload"))
            expect_overload = true;
        else {
            std::fprintf(stderr, "permuq-client: unknown flag %s\n",
                         argv[i]);
            if (const char* hint =
                    tools::closest_flag(argv[i], kKnownFlags))
                std::fprintf(stderr,
                             "permuq-client: did you mean %s?\n", hint);
            std::fprintf(stderr,
                         "permuq-client: see --help for options\n");
            return 2;
        }
    }
    if (count < 1) {
        std::fprintf(stderr, "permuq-client: --count wants >= 1\n");
        return 2;
    }

    std::string error;
    service::Client client;
    if (!client.connect(port, error)) {
        std::fprintf(stderr, "permuq-client: %s\n", error.c_str());
        return 1;
    }

    if (mode != "compile") {
        request = service::Request{};
        request.type = mode;
        request.id = 1;
        service::Response response;
        if (!client.call(request, response, error)) {
            std::fprintf(stderr, "permuq-client: %s\n", error.c_str());
            return 1;
        }
        if (response.type == "error") {
            std::fprintf(stderr, "permuq-client: %s: %s\n",
                         to_string(response.error),
                         response.message.c_str());
            return 1;
        }
        if (mode == "metrics") {
            if (metrics_out == "-") {
                std::fputs(response.prometheus.c_str(), stdout);
            } else {
                std::ofstream out(metrics_out);
                out << response.prometheus;
                if (!out) {
                    std::fprintf(stderr,
                                 "permuq-client: cannot write %s\n",
                                 metrics_out.c_str());
                    return 1;
                }
                std::printf("metrics   : wrote %s\n",
                            metrics_out.c_str());
            }
        } else {
            std::printf("%s\n", mode == "ping" ? "pong" : "ok");
        }
        return 0;
    }

    if (!input.empty() && !load_edges(input, request, error)) {
        std::fprintf(stderr, "permuq-client: %s\n", error.c_str());
        return 1;
    }

    // Pipeline all requests, then collect all responses (they may
    // arrive out of order).
    for (std::int64_t id = 1; id <= count; ++id) {
        request.id = id;
        if (!client.send(request, error)) {
            std::fprintf(stderr, "permuq-client: %s\n", error.c_str());
            return 1;
        }
    }
    std::int64_t overloads = 0, failures = 0;
    service::Response last_result;
    bool have_result = false;
    for (std::int64_t k = 0; k < count; ++k) {
        service::Response response;
        if (!client.receive(response, error)) {
            std::fprintf(stderr, "permuq-client: %s\n", error.c_str());
            return 1;
        }
        if (response.type == "error") {
            if (response.error == service::ErrorKind::Overloaded) {
                ++overloads;
                std::printf("id=%lld overloaded (%s)\n",
                            static_cast<long long>(response.id),
                            response.message.c_str());
            } else {
                ++failures;
                std::fprintf(stderr, "permuq-client: id=%lld %s: %s\n",
                             static_cast<long long>(response.id),
                             to_string(response.error),
                             response.message.c_str());
            }
            continue;
        }
        std::printf("id=%lld tier=%s selected=%s depth=%lld cx=%lld "
                    "swaps=%lld cached=%s queue_ms=%.3f "
                    "compile_ms=%.3f\n",
                    static_cast<long long>(response.id),
                    response.plan.tier.c_str(),
                    response.plan.selected.c_str(),
                    static_cast<long long>(response.plan.depth),
                    static_cast<long long>(response.plan.cx),
                    static_cast<long long>(response.plan.swaps),
                    response.cached ? "true" : "false",
                    response.queue_ms, response.compile_ms);
        last_result = response;
        have_result = true;
    }

    if (have_result && !qasm_out.empty()) {
        std::ofstream out(qasm_out);
        out << last_result.qasm;
        if (!out) {
            std::fprintf(stderr, "permuq-client: cannot write %s\n",
                         qasm_out.c_str());
            return 1;
        }
        std::printf("qasm      : wrote %s\n", qasm_out.c_str());
    }
    if (have_result && !report_out.empty()) {
        std::ofstream out(report_out);
        out << last_result.report_json;
        if (!out) {
            std::fprintf(stderr, "permuq-client: cannot write %s\n",
                         report_out.c_str());
            return 1;
        }
        std::printf("report    : wrote %s\n", report_out.c_str());
    }

    if (expect_overload)
        return overloads > 0 && failures == 0 ? 0 : 1;
    return failures == 0 && overloads == 0 ? 0 : 1;
}
