#!/usr/bin/env python3
"""Diff a freshly produced bench JSON against a committed baseline.

Timings are machine-dependent, so the diff checks what must NOT drift
between runs:

  * the two files share the same schema (same key sets, recursively on
    the structure: top-level keys, per-row keys inside list sections);
  * every correctness flag in the candidate is true (bit_identical /
    thread_identical / samplers_agree / verified and friends -- boolean
    keys whose name contains "identical", "agree" or "verified"; mode
    flags like "smoke" are ignored);
  * structural fields in rows matched across files agree exactly:
    BENCH_compile.json "cases" rows are matched on (arch, requested_n)
    and compared on qubits/edges; "fabric" rows are matched on qubits
    and compared on edges/regions; "tiers" rows are matched on
    (arch, requested_n, tier) and compared on qubits/edges. Rows
    present in only one file (the committed baseline is a full run,
    CI produces --smoke) are skipped;
  * the "telemetry_overhead" section's overhead_ratio stays within
    its own budget_ratio and the budget has not been silently raised
    above the committed baseline's -- an observability-cost
    regression fails the diff even though it is a timing;
  * the BENCH_compile.json "service" section's warm-path cache-hit
    round trip (warm_p50_ms) stays within its own warm_budget_ms and
    the budget has not been silently raised above the committed
    baseline's -- the daemon's warm latency is a product guarantee
    like the observability tax (its byte_identical flag is covered
    by the generic correctness-flag check);
  * the BENCH_sim.json "sweep" section (when present) meets its own
    speedup gates -- single_speedup >= single_speedup_min when
    single_speedup_gated (the bench arms the gate only at sweep
    sizes where the statevector spills out of cache), multi_scaling
    >= multi_scaling_min when multi_scaling_gated -- stays within
    its memory budget, and has not silently loosened a gate (lower
    *_min) or raised memory_budget_bytes above the committed
    baseline's. The values_identical / shots_identical flags are
    covered by the generic correctness-flag check.

Other timing fields are reported for context but never fail the diff.

Usage:
  tools/diff_bench.py BASELINE CANDIDATE

Exits 0 when the candidate is consistent with the baseline,
1 otherwise.
"""

import json
import sys

# List sections with (match-key fields, structural fields to compare).
ROW_SECTIONS = {
    "cases": (("arch", "requested_n"), ("qubits", "edges")),
    "fabric": (("qubits",), ("edges", "regions")),
    "tiers": (("arch", "requested_n", "tier"), ("qubits", "edges")),
}


def fail(message):
    print(f"diff_bench: FAIL: {message}", file=sys.stderr)
    return 1


def load(path):
    with open(path) as f:
        return json.load(f)


def schema_keys(doc):
    keys = set(doc)
    for section, rows in doc.items():
        if isinstance(rows, list):
            for row in rows:
                if isinstance(row, dict):
                    keys.update(f"{section}[].{k}" for k in row)
        elif isinstance(rows, dict):
            keys.update(f"{section}.{k}" for k in rows)
    return keys


def boolean_flags(doc, prefix=""):
    """Flatten every boolean field to a dotted path -> value map."""
    flags = {}
    if isinstance(doc, bool):
        flags[prefix] = doc
    elif isinstance(doc, dict):
        for k, v in doc.items():
            flags.update(boolean_flags(v, f"{prefix}.{k}" if prefix else k))
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            flags.update(boolean_flags(v, f"{prefix}[{i}]"))
    return flags


def diff_telemetry_overhead(base, cand):
    """Gate the observability tax: unlike other timings, the hot/cold
    compile ratio is a product guarantee, so a candidate over its
    budget (or a quietly loosened budget) fails the diff."""
    if cand is None:
        # The baseline predates the section, or vice versa -- the
        # schema check already reported any asymmetry.
        return 0
    ratio = cand.get("overhead_ratio")
    budget = cand.get("budget_ratio")
    if not isinstance(ratio, (int, float)) or not isinstance(
        budget, (int, float)
    ):
        return fail("telemetry_overhead lacks numeric ratio/budget")
    status = 0
    if ratio > budget:
        status |= fail(
            f"telemetry overhead ratio {ratio:.3f} exceeds its "
            f"budget {budget:.2f}"
        )
    if base is not None:
        base_budget = base.get("budget_ratio")
        if isinstance(base_budget, (int, float)) and budget > base_budget:
            status |= fail(
                f"telemetry overhead budget raised from "
                f"{base_budget:.2f} to {budget:.2f} without a "
                f"baseline update"
            )
        base_ratio = base.get("overhead_ratio")
        if isinstance(base_ratio, (int, float)):
            print(
                f"diff_bench: telemetry overhead {ratio:.3f}x "
                f"(baseline {base_ratio:.3f}x, budget {budget:.2f}x)"
            )
    return status


def diff_service(base, cand):
    """Gate the compile service's warm path: a cache hit that has
    drifted over its round-trip budget (or a quietly raised budget)
    fails the diff even though it is a timing."""
    if cand is None:
        return 0
    p50 = cand.get("warm_p50_ms")
    budget = cand.get("warm_budget_ms")
    if not isinstance(p50, (int, float)) or not isinstance(
        budget, (int, float)
    ):
        return fail("service section lacks numeric warm p50/budget")
    status = 0
    if p50 > budget:
        status |= fail(
            f"service warm p50 {p50:.3f} ms exceeds its budget "
            f"{budget:.2f} ms"
        )
    if base is not None:
        base_budget = base.get("warm_budget_ms")
        if isinstance(base_budget, (int, float)) and budget > base_budget:
            status |= fail(
                f"service warm budget raised from {base_budget:.2f} to "
                f"{budget:.2f} ms without a baseline update"
            )
        base_p50 = base.get("warm_p50_ms")
        if isinstance(base_p50, (int, float)):
            print(
                f"diff_bench: service warm p50 {p50:.3f} ms "
                f"(baseline {base_p50:.3f} ms, budget {budget:.2f} ms)"
            )
    return status


def diff_sweep(base, cand):
    """Gate the batched-sweep engine the same way: the speedup floors
    and the memory budget are product guarantees, so a candidate under
    a floor, over the budget, or with quietly loosened gates fails."""
    if cand is None:
        return 0
    status = 0
    speedup = cand.get("single_speedup")
    speedup_min = cand.get("single_speedup_min")
    if not isinstance(speedup, (int, float)) or not isinstance(
        speedup_min, (int, float)
    ):
        return fail("sweep section lacks numeric speedup/floor")
    if cand.get("single_speedup_gated") and speedup < speedup_min:
        status |= fail(
            f"sweep single-problem speedup {speedup:.3f}x is below "
            f"its floor {speedup_min:.2f}x"
        )
    if cand.get("multi_scaling_gated"):
        scaling = cand.get("multi_scaling")
        scaling_min = cand.get("multi_scaling_min")
        if isinstance(scaling, (int, float)) and isinstance(
            scaling_min, (int, float)
        ):
            if scaling < scaling_min:
                status |= fail(
                    f"sweep multi-problem scaling {scaling:.3f}x is "
                    f"below its floor {scaling_min:.2f}x"
                )
        else:
            status |= fail("sweep section lacks numeric multi scaling")
    peak = cand.get("peak_memory_bytes")
    budget = cand.get("memory_budget_bytes")
    if isinstance(peak, int) and isinstance(budget, int) and peak > budget:
        status |= fail(
            f"sweep peak memory {peak} bytes exceeds its budget {budget}"
        )
    if base is not None:
        for floor in ("single_speedup_min", "multi_scaling_min"):
            b, c = base.get(floor), cand.get(floor)
            if (
                isinstance(b, (int, float))
                and isinstance(c, (int, float))
                and c < b
            ):
                status |= fail(
                    f"sweep gate {floor} loosened from {b:.2f} to "
                    f"{c:.2f} without a baseline update"
                )
        b, c = base.get("memory_budget_bytes"), cand.get(
            "memory_budget_bytes"
        )
        if isinstance(b, int) and isinstance(c, int) and c > b:
            status |= fail(
                f"sweep memory budget raised from {b} to {c} bytes "
                f"without a baseline update"
            )
        base_speedup = base.get("single_speedup")
        if isinstance(base_speedup, (int, float)):
            print(
                f"diff_bench: sweep speedup {speedup:.3f}x "
                f"(baseline {base_speedup:.3f}x, floor "
                f"{speedup_min:.2f}x)"
            )
    return status


def diff(baseline_path, candidate_path):
    try:
        baseline = load(baseline_path)
        candidate = load(candidate_path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"not readable JSON: {e}")

    status = 0

    base_keys = schema_keys(baseline)
    cand_keys = schema_keys(candidate)
    # A section may legitimately be null on one side (e.g. stream_100k
    # is only produced by full runs); ignore its nested keys.
    for doc in (baseline, candidate):
        for key, value in doc.items():
            if value is None:
                base_keys = {
                    k
                    for k in base_keys
                    if not k.startswith(f"{key}.")
                    and not k.startswith(f"{key}[]")
                }
                cand_keys = {
                    k
                    for k in cand_keys
                    if not k.startswith(f"{key}.")
                    and not k.startswith(f"{key}[]")
                }
    if base_keys != cand_keys:
        only_base = sorted(base_keys - cand_keys)
        only_cand = sorted(cand_keys - base_keys)
        status |= fail(
            f"schema drift: baseline-only keys {only_base}, "
            f"candidate-only keys {only_cand}"
        )

    for path, value in boolean_flags(candidate).items():
        if value is False and (
            "identical" in path or "agree" in path or "verified" in path
        ):
            status |= fail(f"correctness flag {path} is false")

    for section, (match_on, compare) in ROW_SECTIONS.items():
        base_rows = baseline.get(section) or []
        cand_rows = candidate.get(section) or []
        if not isinstance(base_rows, list) or not isinstance(cand_rows, list):
            continue
        index = {
            tuple(row.get(k) for k in match_on): row for row in base_rows
        }
        matched = 0
        for row in cand_rows:
            key = tuple(row.get(k) for k in match_on)
            base_row = index.get(key)
            if base_row is None:
                continue  # baseline is a full run, candidate may be smoke
            matched += 1
            for field in compare:
                if row.get(field) != base_row.get(field):
                    status |= fail(
                        f"{section} row {key}: {field} = "
                        f"{row.get(field)!r}, baseline has "
                        f"{base_row.get(field)!r}"
                    )
        print(
            f"diff_bench: {section}: {matched}/{len(cand_rows)} "
            f"candidate row(s) matched against the baseline"
        )

    status |= diff_telemetry_overhead(
        baseline.get("telemetry_overhead"),
        candidate.get("telemetry_overhead"),
    )

    status |= diff_service(
        baseline.get("service"), candidate.get("service")
    )

    status |= diff_sweep(baseline.get("sweep"), candidate.get("sweep"))

    if status == 0:
        print(f"diff_bench: {candidate_path} consistent with {baseline_path}")
    return status


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    return diff(sys.argv[1], sys.argv[2])


if __name__ == "__main__":
    sys.exit(main())
