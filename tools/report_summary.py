#!/usr/bin/env python3
"""Pretty-print (and sanity-check) a `permuqc --report` JSON file.

The report is the compiler's per-compile explain record: which tier
actually served the request, where the wall time went, how depth and
swaps split between the greedy prefix and the ATA tail (per round),
cache hit rates, and — for sharded compiles — per-band attribution
plus the stitch bill.

Usage:
  tools/report_summary.py report.json [--require-bands N]
      [--require-caches] [--require-tier NAME] [--json]

Check flags (for CI):
  --require-bands N   fail unless the shard section has >= N band rows
                      with per-band depth/swaps attribution;
  --require-caches    fail unless at least one cache recorded traffic
                      (hits + misses > 0);
  --require-tier T    fail unless tier_served == T.
  --json              echo the parsed report back (validation only).

Exits 0 when the file parses and every check passes, 1 otherwise.
"""

import argparse
import json
import sys


def fail(message):
    print(f"report_summary: FAIL: {message}", file=sys.stderr)
    return 1


def rate(hits, misses):
    total = hits + misses
    if total == 0:
        return "no traffic"
    return f"{hits}/{total} ({100.0 * hits / total:.1f}% hit)"


def print_summary(rep):
    served = rep["tier_served"]
    requested = rep["tier_requested"]
    tier = served if served == requested else f"{served} (requested {requested})"
    print(f"tier        : {tier}")
    if rep.get("fallback_reason"):
        print(f"fallback    : {rep['fallback_reason']}")
    print(f"strategy    : {rep['selected']}")
    print(
        f"problem     : {rep['problem_qubits']} qubits, "
        f"{rep['problem_edges']} edges on a "
        f"{rep['device_qubits']}-qubit device"
    )
    print(
        f"search      : {rep['trials']} trial(s), "
        f"{rep['snapshots']} snapshot(s), "
        f"{rep['candidates']} candidate(s)"
    )

    ph = rep["phase_seconds"]
    total = ph["total"] or 0.0
    print(f"wall time   : {total * 1e3:.2f} ms total")
    for key in ("placement", "greedy", "materialize", "stitch"):
        sec = ph.get(key, 0.0)
        if sec <= 0.0:
            continue
        share = f" ({100.0 * sec / total:.0f}%)" if total > 0 else ""
        print(f"  {key:<11}: {sec * 1e3:.2f} ms{share}")

    pre, tail = rep["prefix"], rep["tail"]
    print(
        f"prefix      : {pre['ops']} ops "
        f"({pre['computes']} compute, {pre['swaps']} swap), "
        f"depth {pre['depth']}"
    )
    if tail["swaps"] + tail["computes"] > 0:
        print(
            f"ATA tail    : {tail['ata_rounds']} round(s), "
            f"{tail['computes']} compute, {tail['swaps']} swap, "
            f"depth +{tail['depth']}"
        )
        shown = tail.get("rounds", [])
        for i, r in enumerate(shown):
            print(
                f"  round {i:<5}: {r['swaps']} swap, "
                f"{r['computes']} compute"
            )
        if tail["ata_rounds"] > len(shown):
            print(f"  ... {tail['ata_rounds'] - len(shown)} round(s) elided")

    caches = rep["caches"]
    print(f"sched cache : {rate(caches['schedule_hits'], caches['schedule_misses'])}")
    print(f"pull cache  : {rate(caches['pull_hits'], caches['pull_misses'])}")

    shard = rep["shard"]
    if shard["regions"] > 0:
        print(
            f"shard       : {shard['regions']} band(s), "
            f"{shard['stitched_edges']} stitched edge(s), "
            f"stitch {shard['stitch_swaps']} swap(s) / "
            f"depth {shard['stitch_depth']}"
        )
        for b in shard.get("bands", []):
            print(
                f"  band {b['index']:<6}: {b['qubits']} qubits, "
                f"{b['edges']} edges -> depth {b['depth']}, "
                f"{b['swaps']} swap, {b['cx']} cx "
                f"in {b['seconds'] * 1e3:.2f} ms ({b['selected']})"
            )

    res = rep["result"]
    fidelity = f", fidelity {res['fidelity']:.4f}" if res["fidelity"] else ""
    print(
        f"result      : depth {res['depth']}, {res['cx_count']} cx, "
        f"{res['swap_count']} swap{fidelity}"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="permuqc --report JSON file")
    parser.add_argument(
        "--require-bands",
        type=int,
        metavar="N",
        help="fail unless the shard section has >= N attributed bands",
    )
    parser.add_argument(
        "--require-caches",
        action="store_true",
        help="fail unless at least one cache recorded traffic",
    )
    parser.add_argument(
        "--require-tier",
        metavar="NAME",
        help="fail unless tier_served equals NAME",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="echo the parsed report instead of pretty-printing",
    )
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            rep = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.report}: not readable JSON: {e}")
    if rep.get("permuq_report") != 1:
        return fail(f"{args.report}: not a permuq report (bad magic)")
    for section in ("phase_seconds", "prefix", "tail", "caches", "shard",
                    "result"):
        if section not in rep:
            return fail(f"{args.report}: missing '{section}' section")

    if args.require_bands is not None:
        bands = rep["shard"].get("bands", [])
        if len(bands) < args.require_bands:
            return fail(
                f"{args.report}: {len(bands)} band row(s), "
                f"need >= {args.require_bands}"
            )
        for b in bands:
            if b["depth"] <= 0 and (b["swaps"] > 0 or b["cx"] > 0):
                return fail(
                    f"{args.report}: band {b['index']} has ops but "
                    f"depth {b['depth']}"
                )
    if args.require_caches:
        caches = rep["caches"]
        traffic = (caches["schedule_hits"] + caches["schedule_misses"] +
                   caches["pull_hits"] + caches["pull_misses"])
        if traffic == 0:
            return fail(f"{args.report}: every cache shows zero traffic")
    if args.require_tier and rep["tier_served"] != args.require_tier:
        return fail(
            f"{args.report}: tier_served {rep['tier_served']!r} != "
            f"{args.require_tier!r}"
        )

    if args.json:
        json.dump(rep, sys.stdout, indent=2)
        print()
    else:
        print_summary(rep)
    return 0


if __name__ == "__main__":
    sys.exit(main())
