/**
 * @file
 * permuqd — the PermuQ compile daemon.
 *
 * A long-lived multi-tenant compile server: accepts framed JSON
 * requests on a loopback TCP port (see src/service/protocol.h), runs
 * the compiles on a bounded worker pool with admission control, and
 * serves repeat requests from an LRU plan cache whose responses are
 * byte-identical to a cold compile.
 *
 *   permuqd --port 7411
 *   permuqd --port 0 --port-file /tmp/permuqd.port   # ephemeral
 *   permuqd --workers 1 --queue-depth 1              # overload demo
 *
 * Environment defaults (flags win): PERMUQ_SERVICE_PORT,
 * PERMUQ_SERVICE_QUEUE_DEPTH, PERMUQ_SERVICE_CACHE_BUDGET (bytes).
 * The daemon exits on SIGINT/SIGTERM or a "shutdown" request; with
 * --prom FILE it writes the final Prometheus exposition on the way
 * out (a scrape endpoint without the HTTP server).
 */
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "cli_util.h"
#include "common/log/flight_recorder.h"
#include "common/log/log.h"
#include "common/telemetry/telemetry.h"
#include "service/plan_cache.h"
#include "service/server.h"

#ifndef PERMUQ_VERSION
#define PERMUQ_VERSION "unknown"
#endif

namespace {

using namespace permuq;

constexpr const char* kKnownFlags[] = {
    "--port",         "--port-file", "--workers",
    "--queue-depth",  "--max-inflight", "--cache-budget",
    "--prom",         "--log-level", "--version",
    "--help",
};

volatile std::sig_atomic_t g_signal = 0;

void
on_signal(int)
{
    g_signal = 1;
}

void
usage(std::FILE* out)
{
    std::fprintf(
        out,
        "usage: permuqd [options]\n"
        "  --port P          listen on 127.0.0.1:P; 0 = ephemeral\n"
        "                    (default: PERMUQ_SERVICE_PORT, else "
        "7411)\n"
        "  --port-file FILE  write the bound port (for --port 0)\n"
        "  --workers N       compile worker threads (default: all "
        "cores)\n"
        "  --queue-depth N   max queued-not-started compiles before\n"
        "                    requests are rejected `overloaded`\n"
        "                    (default: PERMUQ_SERVICE_QUEUE_DEPTH, "
        "else 64)\n"
        "  --max-inflight N  per-connection outstanding-compile cap "
        "(default 32)\n"
        "  --cache-budget B  plan-cache byte budget (default:\n"
        "                    PERMUQ_SERVICE_CACHE_BUDGET, else "
        "268435456)\n"
        "  --prom FILE       write Prometheus text exposition at "
        "shutdown\n"
        "  --log-level L     debug|info|warn|error|off\n"
        "  --version         print the version and env knobs, exit\n"
        "  --help            print this message and exit\n");
}

} // namespace

int
main(int argc, char** argv)
{
    flight::install_crash_handler();
    service::ServerOptions options;
    options.port = static_cast<int>(
        tools::env_int("PERMUQ_SERVICE_PORT", 7411));
    options.queue_depth = static_cast<std::size_t>(
        tools::env_int("PERMUQ_SERVICE_QUEUE_DEPTH", 64));
    options.cache_budget_bytes = static_cast<std::size_t>(
        tools::env_int("PERMUQ_SERVICE_CACHE_BUDGET",
                       256ll * 1024 * 1024));
    std::string port_file, prom_out;

    for (int i = 1; i < argc; ++i) {
        auto is = [&](const char* flag) {
            return std::strcmp(argv[i], flag) == 0;
        };
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "permuqd: %s needs a value\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (is("--help")) {
            usage(stdout);
            return 0;
        } else if (is("--version")) {
            std::printf("permuqd %s\n", PERMUQ_VERSION);
            tools::print_service_env_knobs(stdout);
            return 0;
        } else if (is("--port"))
            options.port = std::atoi(value());
        else if (is("--port-file"))
            port_file = value();
        else if (is("--workers"))
            options.workers = std::atoi(value());
        else if (is("--queue-depth"))
            options.queue_depth =
                static_cast<std::size_t>(std::atoll(value()));
        else if (is("--max-inflight"))
            options.max_inflight =
                static_cast<std::size_t>(std::atoll(value()));
        else if (is("--cache-budget"))
            options.cache_budget_bytes =
                static_cast<std::size_t>(std::atoll(value()));
        else if (is("--prom"))
            prom_out = value();
        else if (is("--log-level")) {
            logging::Level level;
            if (!logging::parse_level(value(), level)) {
                std::fprintf(stderr,
                             "permuqd: bad --log-level %s (want "
                             "debug|info|warn|error|off)\n",
                             argv[i]);
                return 2;
            }
            logging::set_level(level);
        } else {
            std::fprintf(stderr, "permuqd: unknown flag %s\n", argv[i]);
            if (const char* hint =
                    tools::closest_flag(argv[i], kKnownFlags))
                std::fprintf(stderr, "permuqd: did you mean %s?\n",
                             hint);
            std::fprintf(stderr, "permuqd: see --help for options\n");
            return 2;
        }
    }

    // The daemon's whole point is observability: metrics are always
    // on, and the registry carries a constant service label.
    telemetry::set_enabled(true);
    telemetry::Registry::instance().set_export_label("service",
                                                     "permuqd");

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    service::Server server(options);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "permuqd: %s\n", error.c_str());
        return 1;
    }
    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << server.port() << "\n";
        if (!out) {
            std::fprintf(stderr, "permuqd: cannot write %s\n",
                         port_file.c_str());
            return 1;
        }
    }
    std::printf("permuqd: listening on 127.0.0.1:%d (workers %s, "
                "queue depth %zu, cache budget %zu bytes)\n",
                server.port(),
                options.workers > 0
                    ? std::to_string(options.workers).c_str()
                    : "auto",
                options.queue_depth, options.cache_budget_bytes);
    std::fflush(stdout);

    while (!server.shutdown_requested() && g_signal == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();

    const auto& cache = server.cache();
    std::printf("permuqd: cache %lld hit(s) / %lld miss(es), "
                "%zu entr%s, %zu bytes; shutting down\n",
                static_cast<long long>(cache.hits()),
                static_cast<long long>(cache.misses()),
                cache.entries(), cache.entries() == 1 ? "y" : "ies",
                cache.bytes());
    if (!prom_out.empty()) {
        if (!telemetry::Registry::instance().write_prometheus(
                prom_out)) {
            std::fprintf(stderr, "permuqd: cannot write %s\n",
                         prom_out.c_str());
            return 1;
        }
        std::printf("permuqd: prom wrote %s\n", prom_out.c_str());
    }
    logging::flush();
    return 0;
}
