/**
 * @file
 * permuqc — the PermuQ command-line compiler.
 *
 * Compiles a QAOA/2-local problem graph onto a regular quantum
 * architecture and reports metrics, optionally exporting OpenQASM.
 *
 *   permuqc --arch heavyhex --qubits 64 --density 0.3 --seed 1
 *   permuqc --arch sycamore --input problem.edges --qasm out.qasm
 *   permuqc --arch mumbai --qubits 12 --density 0.3 --compiler 2qan
 *
 * The --input format is one "u v" edge per line (0-based vertex ids;
 * '#' comments allowed); the vertex count is 1 + the largest id.
 */
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <sys/resource.h>

#include "cli_util.h"

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "common/error.h"
#include "common/log/flight_recorder.h"
#include "common/log/log.h"
#include "common/telemetry/telemetry.h"
#include "common/vecops.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"
#include "sim/statevector.h"
#include "sim/sweep.h"

#ifndef PERMUQ_VERSION
#define PERMUQ_VERSION "unknown"
#endif

namespace {

using namespace permuq;

struct Cli
{
    std::string arch = "heavyhex";
    /** Custom device: coupler edge-list file (overrides --arch). */
    std::string arch_file;
    std::string compiler = "ours";
    std::string input;
    std::string qasm_out;
    std::string trace_out;
    std::string metrics_out;
    std::string prom_out;
    std::string report_out;
    std::int32_t qubits = 64;
    double density = 0.3;
    std::uint64_t seed = 1;
    std::optional<std::uint64_t> noise_seed;
    double alpha = 0.5;
    bool crosstalk = false;
    bool diagram = false;
    bool full_qaoa = false;
    bool mem_stats = false;
    std::int32_t qaoa_layers = 0;
    std::int32_t qaoa_rounds = 60;
    /** Angle-grid sweep: gammas x betas points (0 = off). */
    std::int32_t sweep_gammas = 0;
    std::int32_t sweep_betas = 0;
    /** Multi-problem sweep width (1 = just the compiled problem). */
    std::int32_t sweep_problems = 1;
    /** Region count for sharded compilation; 0 = off. Seeded from the
     *  PERMUQ_SHARD env var, overridden by --shard. */
    std::int32_t shard = 0;
    std::int32_t shard_margin = 0;
    /** Latency/quality tier; Auto resolves PERMUQ_TIER in compile(). */
    core::CompileTier tier = core::CompileTier::Auto;
};

/** Every flag permuqc understands, for the did-you-mean hint. */
constexpr const char* kKnownFlags[] = {
    "--arch",      "--arch-file", "--qubits",  "--density", "--seed",
    "--input",     "--compiler", "--noise",   "--alpha",
    "--crosstalk", "--qasm",     "--full-qaoa", "--diagram",
    "--qaoa",      "--qaoa-rounds", "--sweep", "--sweep-problems",
    "--trace",     "--metrics",
    "--prom",      "--report",   "--shard",   "--shard-margin",
    "--tier",      "--mem-stats", "--log-level", "--version",
    "--help",
};

/** One line per env knob, for --version / --mem-stats diagnostics. */
void
print_env_knobs(std::FILE* out)
{
    for (const char* knob :
         {"PERMUQ_TIER", "PERMUQ_SHARD", "PERMUQ_SIMD", "PERMUQ_TRACE",
          "PERMUQ_LOG", "PERMUQ_LOG_FORMAT", "PERMUQ_LOG_LEVEL",
          "PERMUQ_FLIGHT"}) {
        const char* value = std::getenv(knob);
        std::fprintf(out, "  %-27s = %s\n", knob,
                     value ? value : "(unset)");
    }
    // The permuqd/permuq-client knobs, reported here too so one
    // `permuqc --version` shows the whole family's configuration.
    tools::print_service_env_knobs(out);
    std::fprintf(out, "  simd tier                   : %s\n",
                 common::vecops::vec_tier_name(
                     common::vecops::active_vec_tier()));
}

void
usage(std::FILE* out)
{
    std::fprintf(
        out,
        "usage: permuqc [options]\n"
        "  --arch A        heavyhex|sycamore|grid|hexagon|line|"
        "lattice3d|mumbai (default heavyhex)\n"
        "  --arch-file F   custom device from a coupler edge list\n"
        "                  (same format as --input; such devices have\n"
        "                  no ATA pattern, so --tier fast falls back\n"
        "                  to balanced)\n"
        "  --qubits N      problem size for random graphs (default 64)\n"
        "  --density D     random-graph density (default 0.3)\n"
        "  --seed S        random-graph seed (default 1)\n"
        "  --input FILE    read the problem as an edge list instead\n"
        "  --compiler C    ours|greedy|ata|qaim|2qan|paulihedral\n"
        "  --noise S       enable a calibrated noise model with seed S\n"
        "  --alpha A       selector depth-vs-error weight (default 0.5)\n"
        "  --crosstalk     enable crosstalk-aware gate scheduling\n"
        "  --qasm FILE     export the compiled circuit as OpenQASM 2.0\n"
        "  --full-qaoa     QASM includes the H prelude, mixer, measures\n"
        "  --diagram       print a text diagram (small circuits only)\n"
        "  --qaoa P        optimize a p=P QAOA run of the compiled\n"
        "                  circuit (simulated; noisy when --noise is\n"
        "                  given, ideal otherwise; n <= 26)\n"
        "  --qaoa-rounds N objective-evaluation budget (default 60)\n"
        "  --sweep GxB     batched angle-grid sweep over G gamma x B\n"
        "                  beta points (e.g. 8x8; p from --qaoa, else\n"
        "                  1; noisy when --noise is given). Prints the\n"
        "                  best point and the points/sec throughput.\n"
        "  --sweep-problems N  sweep N independent problems (seeds\n"
        "                  S..S+N-1) concurrently under one memory\n"
        "                  budget (ideal sweeps only)\n"
        "  --shard K       region-sharded compilation with ~K bands\n"
        "                  (line/grid/sycamore; 0 = off; the\n"
        "                  PERMUQ_SHARD env var sets the default)\n"
        "  --shard-margin W  minimum extra band height in units\n"
        "  --tier T        latency/quality tier: fast|balanced|best|"
        "auto\n"
        "                  (default auto: the PERMUQ_TIER env var,\n"
        "                  else best)\n"
        "  --mem-stats     report peak RSS and the exact-byte circuit\n"
        "                  memory breakdown after compiling\n"
        "  --trace FILE    write a Chrome trace-event JSON (Perfetto)\n"
        "                  (the PERMUQ_TRACE env var does the same)\n"
        "  --metrics FILE  write a metrics-snapshot JSON\n"
        "  --prom FILE     write the metrics as Prometheus text\n"
        "                  exposition (with tier/arch/shard labels)\n"
        "  --report FILE   write the per-compile explain report JSON\n"
        "                  (phase times, band/tail attribution, cache\n"
        "                  hit rates; see tools/report_summary.py)\n"
        "  --log-level L   debug|info|warn|error|off (default warn;\n"
        "                  PERMUQ_LOG/_FORMAT/_LEVEL configure the\n"
        "                  sink, format, and threshold)\n"
        "  --version       print the version and exit\n"
        "  --help          print this message and exit\n");
}

std::optional<graph::Graph>
load_edge_list(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "permuqc: cannot open %s\n", path.c_str());
        return std::nullopt;
    }
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    std::int32_t max_vertex = -1;
    std::string line;
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::int32_t u, v;
        if (fields >> u >> v) {
            edges.emplace_back(u, v);
            max_vertex = std::max({max_vertex, u, v});
        }
    }
    graph::Graph g(max_vertex + 1);
    for (auto [u, v] : edges)
        if (u != v && !g.has_edge(u, v))
            g.add_edge(u, v);
    return g;
}

} // namespace

int
main(int argc, char** argv)
{
    // Always-on crash forensics: SIGSEGV/SIGABRT/... dump the flight
    // ring to permuq_flight.json (PERMUQ_FLIGHT overrides the path).
    flight::install_crash_handler();
    Cli cli;
    if (const char* env = std::getenv("PERMUQ_SHARD"))
        cli.shard = std::atoi(env);
    for (int i = 1; i < argc; ++i) {
        auto is = [&](const char* flag) {
            return std::strcmp(argv[i], flag) == 0;
        };
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "permuqc: %s needs a value\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (is("--help")) {
            usage(stdout);
            return 0;
        } else if (is("--version")) {
            std::printf("permuqc %s\n", PERMUQ_VERSION);
            print_env_knobs(stdout);
            return 0;
        } else if (is("--arch"))
            cli.arch = value();
        else if (is("--arch-file"))
            cli.arch_file = value();
        else if (is("--qubits"))
            cli.qubits = std::atoi(value());
        else if (is("--density"))
            cli.density = std::atof(value());
        else if (is("--seed"))
            cli.seed = static_cast<std::uint64_t>(std::atoll(value()));
        else if (is("--input"))
            cli.input = value();
        else if (is("--compiler"))
            cli.compiler = value();
        else if (is("--noise"))
            cli.noise_seed =
                static_cast<std::uint64_t>(std::atoll(value()));
        else if (is("--alpha"))
            cli.alpha = std::atof(value());
        else if (is("--crosstalk"))
            cli.crosstalk = true;
        else if (is("--qasm"))
            cli.qasm_out = value();
        else if (is("--full-qaoa"))
            cli.full_qaoa = true;
        else if (is("--qaoa"))
            cli.qaoa_layers = std::atoi(value());
        else if (is("--qaoa-rounds"))
            cli.qaoa_rounds = std::atoi(value());
        else if (is("--sweep")) {
            const char* spec = value();
            int g = 0, b = 0;
            if (std::sscanf(spec, "%dx%d", &g, &b) != 2 || g < 1 ||
                b < 1) {
                std::fprintf(stderr,
                             "permuqc: bad --sweep %s (want GxB, e.g. "
                             "8x8)\n",
                             spec);
                return 2;
            }
            cli.sweep_gammas = g;
            cli.sweep_betas = b;
        } else if (is("--sweep-problems")) {
            cli.sweep_problems = std::atoi(value());
            if (cli.sweep_problems < 1) {
                std::fprintf(stderr,
                             "permuqc: --sweep-problems wants a count "
                             ">= 1\n");
                return 2;
            }
        }
        else if (is("--diagram"))
            cli.diagram = true;
        else if (is("--shard"))
            cli.shard = std::atoi(value());
        else if (is("--shard-margin"))
            cli.shard_margin = std::atoi(value());
        else if (is("--tier")) {
            if (!core::parse_tier(value(), cli.tier)) {
                std::fprintf(stderr,
                             "permuqc: bad --tier %s (want "
                             "fast|balanced|best|auto)\n",
                             argv[i]);
                return 2;
            }
        }
        else if (is("--mem-stats"))
            cli.mem_stats = true;
        else if (is("--trace"))
            cli.trace_out = value();
        else if (is("--metrics"))
            cli.metrics_out = value();
        else if (is("--prom"))
            cli.prom_out = value();
        else if (is("--report"))
            cli.report_out = value();
        else if (is("--log-level")) {
            logging::Level level;
            if (!logging::parse_level(value(), level)) {
                std::fprintf(stderr,
                             "permuqc: bad --log-level %s (want "
                             "debug|info|warn|error|off)\n",
                             argv[i]);
                return 2;
            }
            logging::set_level(level);
        } else {
            std::fprintf(stderr, "permuqc: unknown flag %s\n", argv[i]);
            if (const char* hint =
                    tools::closest_flag(argv[i], kKnownFlags))
                std::fprintf(stderr, "permuqc: did you mean %s?\n", hint);
            std::fprintf(stderr, "permuqc: see --help for options\n");
            return 2;
        }
    }

    if (cli.trace_out.empty())
        if (const char* env = telemetry::env_trace_path())
            cli.trace_out = env;
    if (!cli.trace_out.empty() || !cli.metrics_out.empty() ||
        !cli.prom_out.empty())
        telemetry::set_enabled(true);

    try {
        // Problem.
        graph::Graph problem(0);
        if (!cli.input.empty()) {
            auto loaded = load_edge_list(cli.input);
            if (!loaded)
                return 1;
            problem = std::move(*loaded);
        } else {
            problem = problem::random_graph(cli.qubits, cli.density,
                                            cli.seed);
        }

        // Device.
        arch::CouplingGraph device = [&] {
            if (!cli.arch_file.empty()) {
                auto couplers = load_edge_list(cli.arch_file);
                if (!couplers)
                    throw FatalError("cannot read --arch-file " +
                                     cli.arch_file);
                arch::CouplingGraphBuilder builder(
                    couplers->num_vertices(), arch::ArchKind::Custom,
                    "custom:" + cli.arch_file);
                for (const auto& link : couplers->edges())
                    builder.add_coupler(link.a, link.b);
                return builder.build();
            }
            if (cli.arch == "mumbai")
                return arch::make_mumbai();
            arch::ArchKind kind;
            if (cli.arch == "heavyhex")
                kind = arch::ArchKind::HeavyHex;
            else if (cli.arch == "sycamore")
                kind = arch::ArchKind::Sycamore;
            else if (cli.arch == "grid")
                kind = arch::ArchKind::Grid;
            else if (cli.arch == "hexagon")
                kind = arch::ArchKind::Hexagon;
            else if (cli.arch == "line")
                kind = arch::ArchKind::Line;
            else if (cli.arch == "lattice3d")
                kind = arch::ArchKind::Lattice3D;
            else
                throw FatalError("unknown --arch " + cli.arch);
            return arch::smallest_arch(kind, problem.num_vertices());
        }();

        std::optional<arch::NoiseModel> noise;
        if (cli.noise_seed)
            noise = arch::NoiseModel::calibrated(device, *cli.noise_seed);

        // Compile.
        circuit::Circuit circuit;
        std::string selected = cli.compiler;
        std::string tier_served = core::tier_name(
            core::resolve_tier(cli.tier));
        core::CompileReport report;
        double seconds = 0.0;
        if (cli.compiler == "ours" || cli.compiler == "greedy") {
            core::CompilerOptions options;
            options.use_ata_prediction = cli.compiler == "ours";
            options.alpha = cli.alpha;
            options.crosstalk_aware = cli.crosstalk;
            options.noise = noise ? &*noise : nullptr;
            options.shard_regions = cli.shard;
            options.shard_margin = cli.shard_margin;
            options.tier = cli.tier;
            auto result = core::compile(device, problem, options);
            circuit = std::move(result.circuit);
            seconds = result.compile_seconds;
            tier_served = result.tier;
            report = std::move(result.report);
            if (cli.compiler == "ours")
                // result.tier is the tier actually served (fast falls
                // back to balanced on custom devices).
                selected = "ours(" + result.selected + ", tier " +
                           result.tier + ")";
        } else {
            baselines::BaselineResult result;
            if (cli.compiler == "ata")
                result = baselines::ata_only(device, problem);
            else if (cli.compiler == "qaim")
                result = baselines::qaim_like(device, problem,
                                              noise ? &*noise : nullptr);
            else if (cli.compiler == "2qan")
                result = baselines::tqan_like(device, problem);
            else if (cli.compiler == "paulihedral")
                result = baselines::paulihedral_like(device, problem);
            else
                throw FatalError("unknown --compiler " + cli.compiler);
            circuit = std::move(result.circuit);
            seconds = result.compile_seconds;
        }

        circuit::expect_valid(circuit, device, problem);
        auto metrics = circuit::compute_metrics(
            circuit, noise ? &*noise : nullptr);

        std::printf("device    : %s (%d qubits)\n", device.name().c_str(),
                    device.num_qubits());
        std::printf("problem   : %d qubits, %d gates (density %.2f)\n",
                    problem.num_vertices(), problem.num_edges(),
                    problem.density());
        std::printf("compiler  : %s (%.3f s)\n", selected.c_str(),
                    seconds);
        std::printf("depth     : %d cycles\n", metrics.depth);
        std::printf("cx count  : %lld (%lld merged pairs)\n",
                    static_cast<long long>(metrics.cx_count),
                    static_cast<long long>(metrics.merged_pairs));
        std::printf("swaps     : %lld\n",
                    static_cast<long long>(metrics.swap_gates));
        if (noise)
            std::printf("est. fidelity: %.4g\n", metrics.fidelity);

        if (cli.mem_stats) {
            struct rusage usage{};
            getrusage(RUSAGE_SELF, &usage);
            const std::size_t arena = circuit.ops().memory_bytes();
            const std::size_t mappings =
                circuit.initial_mapping().memory_bytes() +
                circuit.final_mapping().memory_bytes();
            const std::size_t total = circuit.memory_bytes();
            std::printf("peak rss  : %lld KiB\n",
                        static_cast<long long>(usage.ru_maxrss));
            std::printf("circuit   : %zu bytes (%zu ops)\n", total,
                        circuit.ops().size());
            std::printf("  op arena: %zu bytes\n", arena);
            std::printf("  mappings: %zu bytes\n", mappings);
            std::printf("  schedule: %zu bytes\n",
                        total - arena - mappings);
            std::printf("env knobs :\n");
            print_env_knobs(stdout);
        }

        if (!cli.qasm_out.empty()) {
            circuit::QasmOptions qasm;
            qasm.full_qaoa = cli.full_qaoa;
            // Stream straight into the file: the program text is never
            // materialized in memory (it dwarfs the circuit at fabric
            // scale).
            std::ofstream out(cli.qasm_out);
            circuit::QasmStreamWriter writer(out, qasm);
            writer.begin(circuit.initial_mapping());
            writer.chunk(circuit);
            writer.finish(circuit.final_mapping());
            std::printf("qasm      : wrote %s\n", cli.qasm_out.c_str());
        }
        if (cli.diagram)
            std::fputs(circuit::to_diagram(circuit).c_str(), stdout);

        if (cli.qaoa_layers > 0) {
            fatal_unless(problem.num_vertices() <= sim::kMaxSimQubits,
                         "--qaoa simulation supports up to " +
                             std::to_string(sim::kMaxSimQubits) +
                             " qubits");
            fatal_unless(cli.qaoa_rounds >= 1,
                         "--qaoa-rounds must be at least 1");
            const std::size_t p =
                static_cast<std::size_t>(cli.qaoa_layers);
            // The evaluation context is built once; every optimizer
            // iteration reuses its baked cost batch, cut table, and
            // scratch state.
            sim::QaoaObjective context(problem);
            std::int32_t eval = 0;
            auto objective = [&](const std::vector<double>& x) {
                sim::QaoaAngles angles;
                angles.gamma.assign(x.begin(),
                                    x.begin() + static_cast<std::ptrdiff_t>(p));
                angles.beta.assign(x.begin() + static_cast<std::ptrdiff_t>(p),
                                   x.end());
                if (!noise)
                    return -context.ideal_expectation(angles);
                sim::NoisySimOptions options;
                options.trajectories = 8;
                options.shots = 2000;
                options.seed =
                    1000 + static_cast<std::uint64_t>(eval++);
                return -context.noisy_expectation(circuit, *noise,
                                                  angles, options);
            };
            std::vector<double> x0;
            for (std::size_t k = 0; k < p; ++k)
                x0.push_back(0.3);
            for (std::size_t k = 0; k < p; ++k)
                x0.push_back(0.2);
            auto r = sim::nelder_mead(objective, x0, 0.4,
                                      cli.qaoa_rounds);
            std::printf("qaoa      : p=%d %s <C>=%.4f after %d evals "
                        "(maxcut %d)\n",
                        cli.qaoa_layers, noise ? "noisy" : "ideal",
                        -r.best_f, cli.qaoa_rounds,
                        sim::max_cut(problem));
        }

        if (cli.sweep_gammas > 0) {
            fatal_unless(problem.num_vertices() <= sim::kMaxSimQubits,
                         "--sweep simulation supports up to " +
                             std::to_string(sim::kMaxSimQubits) +
                             " qubits");
            const std::int32_t layers = std::max(1, cli.qaoa_layers);
            const auto points = sim::sweep_grid(
                static_cast<std::size_t>(cli.sweep_gammas),
                static_cast<std::size_t>(cli.sweep_betas), layers);
            sim::SweepOptions sweep_options;
            core::CompileReport::Sweep& summary = report.sweep;
            summary.layers = layers;
            summary.problems = cli.sweep_problems;
            sim::SweepResult best_problem;
            if (cli.sweep_problems > 1) {
                // Multi-problem mode: the compiled problem plus
                // N-1 sibling instances (seeds S+1..S+N-1), swept
                // concurrently under one memory budget. Ideal only —
                // the siblings have no compiled circuit to replay.
                std::vector<graph::Graph> graphs;
                graphs.reserve(
                    static_cast<std::size_t>(cli.sweep_problems) - 1);
                for (std::int32_t k = 1; k < cli.sweep_problems; ++k)
                    graphs.push_back(problem::random_graph(
                        problem.num_vertices(), cli.density,
                        cli.seed + static_cast<std::uint64_t>(k)));
                std::vector<sim::QaoaObjective> contexts;
                contexts.reserve(
                    static_cast<std::size_t>(cli.sweep_problems));
                contexts.emplace_back(problem);
                for (const auto& g : graphs)
                    contexts.emplace_back(g);
                std::vector<sim::QaoaObjective*> objectives;
                for (auto& c : contexts)
                    objectives.push_back(&c);
                auto multi = sim::sweep_problems(objectives, points,
                                                 sweep_options);
                best_problem = std::move(multi.problems.front());
                summary.mode = "ideal";
                summary.problems_in_flight = static_cast<std::int32_t>(
                    multi.problems_in_flight);
                summary.peak_memory_bytes = static_cast<std::int64_t>(
                    multi.peak_memory_bytes);
                summary.seconds = multi.seconds;
                summary.points_per_sec = multi.points_per_sec;
                std::printf("sweep     : %d problems x %zu points, "
                            "%d in flight, %.3g Mpts/s aggregate, "
                            "peak %lld bytes\n",
                            cli.sweep_problems, points.size(),
                            summary.problems_in_flight,
                            multi.points_per_sec * 1e-6,
                            static_cast<long long>(
                                summary.peak_memory_bytes));
            } else {
                sim::QaoaObjective context(problem);
                sim::SweepEvaluator evaluator(context, sweep_options);
                if (noise) {
                    sim::NoisySimOptions sim_options;
                    sim_options.trajectories = 8;
                    sim_options.shots = 2000;
                    sim_options.seed = 1000;
                    best_problem = evaluator.noisy_sweep(
                        circuit, *noise, points, sim_options);
                    summary.mode = "noisy";
                } else {
                    best_problem = evaluator.ideal_sweep(points);
                    summary.mode = "ideal";
                }
                summary.problems_in_flight = 1;
                summary.peak_memory_bytes = static_cast<std::int64_t>(
                    best_problem.memory_bytes);
                summary.seconds = best_problem.seconds;
                summary.points_per_sec = best_problem.points_per_sec;
            }
            const sim::QaoaAngles& best =
                points[best_problem.best_index];
            summary.points =
                static_cast<std::int64_t>(best_problem.points);
            summary.batch =
                static_cast<std::int32_t>(best_problem.batch);
            summary.best_gamma = best.gamma[0];
            summary.best_beta = best.beta[0];
            summary.best_value = best_problem.best_value;
            summary.memory_bytes =
                static_cast<std::int64_t>(best_problem.memory_bytes);
            std::printf("sweep     : %dx%d grid p=%d %s best <C>=%.4f "
                        "at gamma=%.4f beta=%.4f (%zu points, "
                        "%.3g pts/s, batch %zu)\n",
                        cli.sweep_gammas, cli.sweep_betas, layers,
                        summary.mode.c_str(), best_problem.best_value,
                        best.gamma[0], best.beta[0],
                        best_problem.points,
                        best_problem.points_per_sec,
                        best_problem.batch);
            if (cli.mem_stats) {
                struct rusage usage{};
                getrusage(RUSAGE_SELF, &usage);
                std::printf("sweep mem : %zu bytes batched buffers "
                            "(batch %zu), peak rss %lld KiB\n",
                            best_problem.memory_bytes,
                            best_problem.batch,
                            static_cast<long long>(usage.ru_maxrss));
            }
        }

        const auto& registry = telemetry::Registry::instance();
        if (!cli.trace_out.empty()) {
            if (!registry.write_trace(cli.trace_out)) {
                std::fprintf(stderr, "permuqc: cannot write %s\n",
                             cli.trace_out.c_str());
                return 1;
            }
            std::printf("trace     : wrote %s\n", cli.trace_out.c_str());
        }
        if (!cli.metrics_out.empty()) {
            if (!registry.write_metrics(cli.metrics_out)) {
                std::fprintf(stderr, "permuqc: cannot write %s\n",
                             cli.metrics_out.c_str());
                return 1;
            }
            std::printf("metrics   : wrote %s\n",
                        cli.metrics_out.c_str());
        }
        if (!cli.prom_out.empty()) {
            // Constant export labels: the payload a permuqd scrape
            // endpoint would serve for this compile.
            auto& mutable_registry = telemetry::Registry::instance();
            mutable_registry.set_export_label("tier", tier_served);
            mutable_registry.set_export_label(
                "arch", cli.arch_file.empty() ? cli.arch : "custom");
            mutable_registry.set_export_label(
                "shard", std::to_string(cli.shard));
            if (!mutable_registry.write_prometheus(cli.prom_out)) {
                std::fprintf(stderr, "permuqc: cannot write %s\n",
                             cli.prom_out.c_str());
                return 1;
            }
            std::printf("prom      : wrote %s\n", cli.prom_out.c_str());
        }
        if (!cli.report_out.empty()) {
            std::ofstream out(cli.report_out);
            out << report.to_json();
            if (!out) {
                std::fprintf(stderr, "permuqc: cannot write %s\n",
                             cli.report_out.c_str());
                return 1;
            }
            std::printf("report    : wrote %s\n",
                        cli.report_out.c_str());
        }
        logging::flush();
        return 0;
    } catch (const std::exception& e) {
        // Preserve the last spans/log records for post-mortem before
        // surfacing the error: fatal errors get the same flight-dump
        // treatment as crash signals.
        flight::note(flight::Kind::Fatal, "exception", e.what(), 0);
        flight::dump();
        std::fprintf(stderr, "permuqc: %s\n", e.what());
        return 1;
    }
}
