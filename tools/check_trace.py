#!/usr/bin/env python3
"""Validate PermuQ telemetry output.

Checks a Chrome trace-event JSON (as written by `permuqc --trace` or
PERMUQ_TRACE) and optionally a metrics JSON (`permuqc --metrics`):

  * both files are valid JSON;
  * every trace event carries the required fields ph/ts/pid/tid/name;
  * event `ts` values are monotonically non-decreasing per thread
    (the exporter sorts by (tid, ts), so a violation means a broken
    ring buffer or clock);
  * with --require-span NAME, at least one event with that name
    exists (substring match, so `--require-span placement` accepts
    `placement.connectivity`);
  * with --require-span-arg NAME:KEY or NAME:KEY=VALUE, at least one
    event whose name contains NAME carries an args entry KEY (and,
    with =VALUE, whose stringified value equals VALUE) -- e.g.
    `--require-span-arg compile:tier=fast` checks that the top-level
    compile span was labelled with the fast tier;
  * with --require-counter NAME, the metrics JSON has a counter whose
    name contains NAME with a nonzero value;
  * with --require-histogram NAME, the metrics JSON has a histogram
    whose name contains NAME with a nonzero sample count.

Usage:
  tools/check_trace.py trace.json [--metrics metrics.json]
      [--require-span NAME ...] [--require-span-arg NAME:KEY[=VALUE] ...]
      [--require-counter NAME ...] [--require-histogram NAME ...]

Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_EVENT_FIELDS = ("ph", "ts", "pid", "tid", "name")


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    return 1


def parse_span_arg(spec):
    """Split NAME:KEY or NAME:KEY=VALUE into (name, key, value|None)."""
    name, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise ValueError(f"bad --require-span-arg '{spec}' (want NAME:KEY)")
    key, sep, value = rest.partition("=")
    return name, key, value if sep else None


def check_trace(path, require_spans, require_span_args):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: not readable JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: missing traceEvents array")

    last_ts = {}
    names = set()
    for i, ev in enumerate(events):
        for field in REQUIRED_EVENT_FIELDS:
            if field not in ev:
                return fail(f"{path}: event {i} lacks '{field}': {ev}")
        tid = ev["tid"]
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{path}: event {i} has bad ts {ts!r}")
        if tid in last_ts and ts < last_ts[tid]:
            return fail(
                f"{path}: ts not monotonic on tid {tid}: "
                f"{ts} after {last_ts[tid]} (event {i})"
            )
        last_ts[tid] = ts
        names.add(ev["name"])

    for want in require_spans:
        if not any(want in name for name in names):
            return fail(
                f"{path}: no span matching '{want}' "
                f"(have: {sorted(names)})"
            )

    for spec in require_span_args:
        try:
            name, key, value = parse_span_arg(spec)
        except ValueError as e:
            return fail(str(e))
        seen = []
        hit = False
        for ev in events:
            if name not in ev["name"]:
                continue
            args = ev.get("args")
            if not isinstance(args, dict) or key not in args:
                continue
            seen.append(args[key])
            if value is None or str(args[key]) == value:
                hit = True
                break
        if not hit:
            return fail(
                f"{path}: no span matching '{name}' with arg "
                f"'{key}'{'' if value is None else f' = {value!r}'} "
                f"(saw values: {seen})"
            )

    print(
        f"check_trace: {path}: {len(events)} events on "
        f"{len(last_ts)} thread(s), {len(names)} span name(s) OK"
    )
    return 0


def check_metrics(path, require_counters, require_histograms):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: not readable JSON: {e}")

    for section in ("counters", "gauges", "histograms", "spans"):
        if section not in doc:
            return fail(f"{path}: missing '{section}' section")

    counters = doc["counters"]
    for want in require_counters:
        hits = {k: v for k, v in counters.items() if want in k}
        if not hits:
            return fail(
                f"{path}: no counter matching '{want}' "
                f"(have: {sorted(counters)})"
            )
        if all(v == 0 for v in hits.values()):
            return fail(f"{path}: counters {sorted(hits)} are all zero")

    histograms = doc["histograms"]
    for want in require_histograms:
        hits = {k: v for k, v in histograms.items() if want in k}
        if not hits:
            return fail(
                f"{path}: no histogram matching '{want}' "
                f"(have: {sorted(histograms)})"
            )
        if all(v.get("count", 0) == 0 for v in hits.values()):
            return fail(f"{path}: histograms {sorted(hits)} are empty")

    print(
        f"check_trace: {path}: {len(counters)} counter(s), "
        f"{len(doc['histograms'])} histogram(s), "
        f"{len(doc['spans'])} span aggregate(s) OK"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", help="metrics snapshot JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one span whose name contains NAME",
    )
    parser.add_argument(
        "--require-span-arg",
        action="append",
        default=[],
        metavar="NAME:KEY[=VALUE]",
        help="require a span whose name contains NAME and whose args "
        "carry KEY (optionally with stringified value VALUE)",
    )
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="require a nonzero counter whose name contains NAME "
        "(needs --metrics)",
    )
    parser.add_argument(
        "--require-histogram",
        action="append",
        default=[],
        metavar="NAME",
        help="require a non-empty histogram whose name contains NAME "
        "(needs --metrics)",
    )
    args = parser.parse_args()

    status = check_trace(args.trace, args.require_span, args.require_span_arg)
    if args.metrics:
        status |= check_metrics(
            args.metrics, args.require_counter, args.require_histogram
        )
    elif args.require_counter or args.require_histogram:
        return fail("--require-counter/--require-histogram need --metrics")
    return status


if __name__ == "__main__":
    sys.exit(main())
