#!/usr/bin/env python3
"""Validate Prometheus text-format output from `permuqc --prom`.

Checks the exposition format (version 0.0.4) rules that matter for a
scrape to succeed, plus PermuQ's own conventions:

  * every non-comment line parses as  name{labels} value  or
    name value;
  * metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every metric family name starts with the permuq_ prefix;
  * label values are properly quoted and escaped;
  * each # TYPE line names a valid type (counter|gauge|histogram|
    summary|untyped) and no family is TYPE-declared twice;
  * samples of a family appear after its TYPE line (when present)
    and families are not interleaved;
  * histogram bucket counts are cumulative (non-decreasing in le
    order) and the le="+Inf" bucket equals the family's _count;
  * values parse as floats (NaN/+Inf/-Inf allowed).

Usage:
  tools/check_prom.py prom.txt [--require-metric NAME ...]
      [--require-label KEY=VALUE ...]

--require-metric NAME demands at least one sample whose family name
contains NAME.  --require-label KEY=VALUE demands at least one sample
carrying that exact label pair (e.g. --require-label tier=fast).

Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value   (timestamps are not emitted)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
SUFFIXES = ("_bucket", "_count", "_sum", "_total")


def fail(message):
    print(f"check_prom: FAIL: {message}", file=sys.stderr)
    return 1


def family_of(name):
    """Strip the sample suffix to recover the metric family name."""
    for suffix in SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw, lineno):
    """Parse the inside of {...}; returns (dict, error|None)."""
    labels = {}
    rest = raw
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            return labels, f"line {lineno}: bad label syntax near {rest!r}"
        key, value = m.group(1), m.group(2)
        labels[key] = (
            value.replace(r"\"", '"').replace(r"\n", "\n").replace("\\\\", "\\")
        )
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return labels, f"line {lineno}: expected ',' near {rest!r}"
    return labels, None


def parse_value(raw):
    try:
        return float(raw), None
    except ValueError:
        return None, f"unparseable value {raw!r}"


def check(path, require_metrics, require_labels):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"{path}: {e}")

    typed = {}          # family -> declared type
    samples = []        # (family, name, labels, value, lineno)
    family_order = []   # families in first-sample order
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    return fail(f"{path}: line {lineno}: malformed TYPE line")
                family, kind = parts[2], parts[3].strip()
                if not NAME_RE.match(family):
                    return fail(
                        f"{path}: line {lineno}: bad family name {family!r}"
                    )
                if kind not in VALID_TYPES:
                    return fail(
                        f"{path}: line {lineno}: bad type {kind!r} "
                        f"(want one of {sorted(VALID_TYPES)})"
                    )
                if family in typed:
                    return fail(
                        f"{path}: line {lineno}: duplicate TYPE for {family}"
                    )
                typed[family] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"{path}: line {lineno}: unparseable sample: {line!r}")
        name = m.group("name")
        if not name.startswith("permuq_"):
            return fail(
                f"{path}: line {lineno}: {name} lacks the permuq_ prefix"
            )
        labels, err = ({}, None)
        if m.group("labels") is not None:
            labels, err = parse_labels(m.group("labels"), lineno)
            if err:
                return fail(f"{path}: {err}")
        value, err = parse_value(m.group("value"))
        if err:
            return fail(f"{path}: line {lineno}: {err}")
        family = family_of(name)
        if family not in family_order:
            family_order.append(family)
        elif family_order[-1] != family:
            return fail(
                f"{path}: line {lineno}: samples of {family} are "
                f"interleaved with another family"
            )
        samples.append((family, name, labels, value, lineno))

    if not samples:
        return fail(f"{path}: no samples found")

    # Histogram invariants: cumulative buckets, +Inf bucket == _count.
    for family, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = []  # (le, value, lineno)
        count = None
        for fam, name, labels, value, lineno in samples:
            if fam != family:
                continue
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    return fail(
                        f"{path}: line {lineno}: {name} lacks an le label"
                    )
                buckets.append((math.inf if le == "+Inf" else float(le),
                                value, lineno))
            elif name.endswith("_count"):
                count = value
        if not buckets:
            return fail(f"{path}: histogram {family} has no buckets")
        buckets.sort(key=lambda b: b[0])
        prev = -math.inf
        for le, value, lineno in buckets:
            if value < prev:
                return fail(
                    f"{path}: line {lineno}: {family} bucket le={le} "
                    f"count {value} < previous bucket {prev} "
                    f"(buckets must be cumulative)"
                )
            prev = value
        if buckets[-1][0] != math.inf:
            return fail(f"{path}: histogram {family} lacks an le=\"+Inf\" bucket")
        if count is not None and buckets[-1][1] != count:
            return fail(
                f"{path}: histogram {family}: +Inf bucket "
                f"{buckets[-1][1]} != _count {count}"
            )

    for want in require_metrics:
        if not any(want in fam for fam, *_ in samples):
            return fail(
                f"{path}: no metric matching '{want}' "
                f"(have: {sorted(set(fam for fam, *_ in samples))})"
            )
    for spec in require_labels:
        key, sep, value = spec.partition("=")
        if not sep:
            return fail(f"bad --require-label '{spec}' (want KEY=VALUE)")
        if not any(labels.get(key) == value
                   for _, _, labels, _, _ in samples):
            return fail(f"{path}: no sample labelled {key}={value!r}")

    print(
        f"check_prom: {path}: {len(samples)} sample(s) across "
        f"{len(family_order)} family(ies), {len(typed)} TYPE'd OK"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prom", help="Prometheus text-format file")
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME",
        help="require a metric family whose name contains NAME",
    )
    parser.add_argument(
        "--require-label",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="require at least one sample carrying this label pair",
    )
    args = parser.parse_args()
    return check(args.prom, args.require_metric, args.require_label)


if __name__ == "__main__":
    sys.exit(main())
