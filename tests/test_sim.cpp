/**
 * @file
 * Tests of the simulator stack: statevector gate semantics against
 * analytic states, QAOA expectation identities, noise monotonicity,
 * TVD, and the Nelder-Mead optimizer.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"
#include "sim/statevector.h"

namespace permuq::sim {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(StatevectorTest, StartsInZero)
{
    Statevector sv(3);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-12);
}

TEST(StatevectorTest, BellState)
{
    Statevector sv(2);
    sv.apply_h(0);
    sv.apply_cx(0, 1);
    auto p = sv.probabilities();
    EXPECT_NEAR(p[0b00], 0.5, 1e-12);
    EXPECT_NEAR(p[0b11], 0.5, 1e-12);
    EXPECT_NEAR(p[0b01], 0.0, 1e-12);
    EXPECT_NEAR(p[0b10], 0.0, 1e-12);
}

TEST(StatevectorTest, GhzState)
{
    Statevector sv(5);
    sv.apply_h(0);
    for (int q = 0; q < 4; ++q)
        sv.apply_cx(q, q + 1);
    auto p = sv.probabilities();
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[31], 0.5, 1e-12);
}

TEST(StatevectorTest, PauliAlgebra)
{
    Statevector sv(1);
    sv.apply_x(0);
    EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 1.0, 1e-12);
    sv.apply_z(0);
    EXPECT_NEAR(sv.amplitudes()[1].real(), -1.0, 1e-12);
    sv.apply_y(0); // Y|1> = -i|0>
    EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 1.0, 1e-12);
}

TEST(StatevectorTest, RxRotation)
{
    Statevector sv(1);
    sv.apply_rx(0, kPi); // RX(pi)|0> = -i|1>
    EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 1.0, 1e-12);
    sv.apply_rx(0, kPi); // again -> -|0>
    EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 1.0, 1e-12);
}

TEST(StatevectorTest, SwapMovesAmplitudes)
{
    Statevector sv(2);
    sv.apply_x(0); // |01> (qubit0 = 1)
    sv.apply_swap(0, 1);
    auto p = sv.probabilities();
    EXPECT_NEAR(p[0b10], 1.0, 1e-12);
}

TEST(StatevectorTest, RzzPhases)
{
    // On |++>, RZZ followed by H's gives interference that depends on
    // theta; check the analytic single-edge QAOA probability instead:
    // after H RZZ(-2g) H at g = pi/4 the state is maximally mixed
    // between aligned/anti-aligned. Cheaper check: RZZ on basis state
    // only adds phase.
    Statevector sv(2);
    sv.apply_x(0);
    sv.apply_rzz(0, 1, 0.7); // phase e^{+i 0.35} on |01>
    EXPECT_NEAR(std::arg(sv.amplitudes()[1]), 0.35, 1e-12);
    EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 1.0, 1e-12);
}

TEST(StatevectorTest, CphaseOnlyHits11)
{
    Statevector sv(2);
    sv.apply_h(0);
    sv.apply_h(1);
    sv.apply_cphase(0, 1, kPi);
    // Now equals (|00>+|01>+|10>-|11>)/2.
    EXPECT_NEAR(sv.amplitudes()[3].real(), -0.5, 1e-12);
    EXPECT_NEAR(sv.amplitudes()[1].real(), 0.5, 1e-12);
}

TEST(StatevectorTest, NormPreserved)
{
    Statevector sv(4);
    Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
        int q = static_cast<int>(rng.next_below(4));
        int r = static_cast<int>(rng.next_below(4));
        sv.apply_h(q);
        sv.apply_rx(q, rng.next_double());
        sv.apply_rz(q, rng.next_double());
        if (q != r)
            sv.apply_rzz(q, r, rng.next_double());
    }
    EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-9);
}

TEST(StatevectorTest, SamplingMatchesDistribution)
{
    Statevector sv(2);
    sv.apply_h(0);
    Xoshiro256 rng(4);
    int ones = 0;
    for (int i = 0; i < 20000; ++i)
        ones += sv.sample(rng) & 1;
    EXPECT_NEAR(ones / 20000.0, 0.5, 0.02);
}

// ---------------------------------------------------------------- QAOA

TEST(QaoaTest, CutValue)
{
    auto problem = problem::clique(3);
    EXPECT_EQ(cut_value(problem, 0b000), 0);
    EXPECT_EQ(cut_value(problem, 0b001), 2);
    EXPECT_EQ(cut_value(problem, 0b011), 2);
}

TEST(QaoaTest, MaxCutKnownValues)
{
    EXPECT_EQ(max_cut(problem::clique(4)), 4);
    graph::Graph path(4);
    path.add_edge(0, 1);
    path.add_edge(1, 2);
    path.add_edge(2, 3);
    EXPECT_EQ(max_cut(path), 3);
}

TEST(QaoaTest, ZeroAnglesGiveHalfTheEdges)
{
    auto problem = problem::random_graph(8, 0.4, 2);
    QaoaAngles angles{{0.0}, {0.0}};
    EXPECT_NEAR(ideal_expectation(problem, angles),
                problem.num_edges() / 2.0, 1e-9);
}

TEST(QaoaTest, ZeroBetaKeepsUniform)
{
    auto problem = problem::random_graph(8, 0.4, 2);
    QaoaAngles angles{{0.8}, {0.0}};
    EXPECT_NEAR(ideal_expectation(problem, angles),
                problem.num_edges() / 2.0, 1e-9);
}

TEST(QaoaTest, OptimalP1BeatsRandomGuessing)
{
    auto problem = problem::random_graph(8, 0.4, 6);
    double best = 0.0;
    for (double g = 0.1; g < 1.2; g += 0.1)
        for (double b = 0.1; b < 0.8; b += 0.1)
            best = std::max(best,
                            ideal_expectation(problem, {{g}, {b}}));
    EXPECT_GT(best, problem.num_edges() / 2.0 + 0.3);
    EXPECT_LE(best, max_cut(problem) + 1e-9);
}

TEST(QaoaTest, SingleEdgeAnalyticFormula)
{
    // Triangle-free p=1 formula (Wang et al.): for edge (u,v),
    // <C_uv> = 1/2 + (1/4) sin(4b) sin(g) (cos^{du-1} g + cos^{dv-1} g);
    // an isolated edge has du = dv = 1, so <C> = 1/2 + 1/2 sin4b sin g.
    graph::Graph problem(2);
    problem.add_edge(0, 1);
    for (double g : {0.3, 0.7, 1.1})
        for (double b : {0.2, 0.5}) {
            double expect = 0.5 + 0.5 * std::sin(4 * b) * std::sin(g);
            EXPECT_NEAR(ideal_expectation(problem, {{g}, {b}}), expect,
                        1e-9)
                << "g=" << g << " b=" << b;
        }
}

TEST(QaoaTest, IdealDistributionNormalized)
{
    auto problem = problem::random_graph(6, 0.5, 8);
    auto p = ideal_distribution(problem, {{0.4}, {0.3}});
    double sum = 0.0;
    for (double x : p)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --------------------------------------------------------- noisy sim

struct NoisyFixture
{
    arch::CouplingGraph device = arch::make_mumbai();
    graph::Graph problem = problem::random_graph(8, 0.35, 5);
    circuit::Circuit compiled;

    NoisyFixture()
    {
        compiled = core::compile(device, problem).circuit;
    }
};

TEST(NoisySimTest, IdealNoiseMatchesIdealExpectation)
{
    NoisyFixture f;
    auto noise = arch::NoiseModel::ideal(f.device);
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    options.trajectories = 2;
    options.shots = 60000;
    double noisy = noisy_expectation(f.problem, f.compiled, noise,
                                     angles, options);
    EXPECT_NEAR(noisy, ideal_expectation(f.problem, angles), 0.12);
}

TEST(NoisySimTest, MoreNoiseLowersExpectation)
{
    NoisyFixture f;
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    options.trajectories = 24;
    options.shots = 24000;
    double ideal = ideal_expectation(f.problem, angles);
    auto low = arch::NoiseModel::calibrated(f.device, 3, 0.004);
    auto high = arch::NoiseModel::calibrated(f.device, 3, 0.05);
    double e_low = noisy_expectation(f.problem, f.compiled, low, angles,
                                     options);
    double e_high = noisy_expectation(f.problem, f.compiled, high,
                                      angles, options);
    EXPECT_GT(ideal, e_low - 0.05);
    EXPECT_GT(e_low, e_high);
}

TEST(NoisySimTest, TvdGrowsWithNoise)
{
    NoisyFixture f;
    QaoaAngles angles{{0.5}, {0.4}};
    auto ideal = ideal_distribution(f.problem, angles);
    NoisySimOptions options;
    options.trajectories = 24;
    options.shots = 24000;
    auto low = arch::NoiseModel::calibrated(f.device, 3, 0.004);
    auto high = arch::NoiseModel::calibrated(f.device, 3, 0.05);
    double tvd_low = tvd(ideal, noisy_counts(f.problem, f.compiled, low,
                                             angles, options));
    double tvd_high = tvd(ideal, noisy_counts(f.problem, f.compiled,
                                              high, angles, options));
    EXPECT_LT(tvd_low, tvd_high);
    EXPECT_GT(tvd_high, 0.1);
}

TEST(NoisySimTest, DistributionTvdOrdersByNoise)
{
    NoisyFixture f;
    QaoaAngles angles{{0.5}, {0.4}};
    auto ideal = ideal_distribution(f.problem, angles);
    NoisySimOptions options;
    options.trajectories = 24;
    auto low = arch::NoiseModel::calibrated(f.device, 3, 0.004);
    auto high = arch::NoiseModel::calibrated(f.device, 3, 0.05);
    double d_none = tvd(ideal, noisy_distribution(
                                   f.problem, f.compiled,
                                   arch::NoiseModel::ideal(f.device),
                                   angles, options));
    double d_low = tvd(ideal, noisy_distribution(f.problem, f.compiled,
                                                 low, angles, options));
    double d_high = tvd(ideal, noisy_distribution(f.problem, f.compiled,
                                                  high, angles, options));
    EXPECT_NEAR(d_none, 0.0, 1e-9);
    EXPECT_LT(d_low, d_high);
}

TEST(NoisySimTest, DeeperCircuitIsNoisier)
{
    NoisyFixture f;
    // Build an artificially padded circuit: same gates plus wasted
    // swap ping-pong.
    circuit::Circuit padded(f.compiled.initial_mapping());
    for (int k = 0; k < 10; ++k) {
        padded.add_swap(0, 1);
        padded.add_swap(0, 1);
    }
    padded.append_circuit(f.compiled);
    auto noise = arch::NoiseModel::calibrated(f.device, 3, 0.02);
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    // Enough trajectories that the ~60-extra-CX noise gap clears the
    // Monte-Carlo error at any RNG substream assignment.
    options.trajectories = 128;
    options.shots = 128000;
    double e_clean = noisy_expectation(f.problem, f.compiled, noise,
                                       angles, options);
    double e_padded = noisy_expectation(f.problem, padded, noise, angles,
                                        options);
    EXPECT_GT(e_clean, e_padded);
}

TEST(NoisySimTest, TwoLayerQaoaRunsViaReversedReplay)
{
    NoisyFixture f;
    auto noise = arch::NoiseModel::ideal(f.device);
    QaoaAngles angles{{0.5, 0.3}, {0.4, 0.2}};
    NoisySimOptions options;
    options.trajectories = 2;
    options.shots = 60000;
    double noisy = noisy_expectation(f.problem, f.compiled, noise,
                                     angles, options);
    EXPECT_NEAR(noisy, ideal_expectation(f.problem, angles), 0.15);
}

// ---------------------------------------------------------- optimizer

TEST(NelderMeadTest, MinimizesQuadratic)
{
    auto f = [](const std::vector<double>& x) {
        double dx = x[0] - 1.5, dy = x[1] + 0.5;
        return dx * dx + 2 * dy * dy;
    };
    auto result = nelder_mead(f, {0.0, 0.0}, 0.5, 200);
    EXPECT_NEAR(result.best_x[0], 1.5, 1e-3);
    EXPECT_NEAR(result.best_x[1], -0.5, 1e-3);
    EXPECT_LT(result.best_f, 1e-5);
}

TEST(NelderMeadTest, HistoryIsMonotoneAndBudgeted)
{
    auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
    auto result = nelder_mead(f, {3.0}, 1.0, 40);
    EXPECT_LE(result.history.size(), 41u);
    for (std::size_t i = 1; i < result.history.size(); ++i)
        EXPECT_LE(result.history[i], result.history[i - 1] + 1e-15);
}

TEST(NelderMeadTest, RosenbrockProgress)
{
    auto f = [](const std::vector<double>& x) {
        double a = 1 - x[0], b = x[1] - x[0] * x[0];
        return a * a + 100 * b * b;
    };
    auto result = nelder_mead(f, {-1.0, 1.0}, 0.5, 600);
    EXPECT_LT(result.best_f, 0.1);
}

} // namespace
} // namespace permuq::sim
