/**
 * @file
 * Tests of the crosstalk model: the "close and parallel" coupler-pair
 * relation on architectures where the answer is enumerable by hand,
 * plus structural invariants (symmetry, dedup) on larger devices.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "arch/coupling_graph.h"
#include "core/crosstalk.h"

namespace permuq::core {
namespace {

/** All unordered crosstalk pairs, recovered from the neighbor lists. */
std::set<std::pair<std::int32_t, std::int32_t>>
pair_set(const CrosstalkMap& map, std::int32_t num_couplers)
{
    std::set<std::pair<std::int32_t, std::int32_t>> pairs;
    for (std::int32_t c = 0; c < num_couplers; ++c)
        for (std::int32_t d : map.neighbors(c))
            pairs.emplace(std::min(c, d), std::max(c, d));
    return pairs;
}

TEST(CrosstalkTest, LineHasNoParallelCouplers)
{
    // On a line, couplers adjacent to coupler (i,i+1) share one of its
    // endpoints, so no disjoint close-and-parallel pair exists.
    auto device = arch::make_line(8);
    CrosstalkMap map(device);
    EXPECT_EQ(map.total_pairs(), 0);
    auto n = static_cast<std::int32_t>(device.couplers().size());
    for (std::int32_t c = 0; c < n; ++c)
        EXPECT_TRUE(map.neighbors(c).empty()) << "coupler " << c;
}

TEST(CrosstalkTest, FourCycleHasTwoOpposingPairs)
{
    // A 2x2 grid is a 4-cycle: each edge crosstalks with exactly the
    // opposite edge, giving 2 unordered pairs.
    auto device = arch::make_grid(2, 2);
    ASSERT_EQ(device.couplers().size(), 4u);
    CrosstalkMap map(device);
    EXPECT_EQ(map.total_pairs(), 2);
    for (std::int32_t c = 0; c < 4; ++c)
        EXPECT_EQ(map.neighbors(c).size(), 1u) << "coupler " << c;
}

TEST(CrosstalkTest, TwoByThreeGridCountedByHand)
{
    // 2x3 grid, 7 couplers. By enumeration the crosstalk pairs are the
    // two stacked horizontal pairs and the two adjacent vertical pairs:
    // 4 in total, with the middle vertical coupler in two of them.
    auto device = arch::make_grid(2, 3);
    ASSERT_EQ(device.couplers().size(), 7u);
    CrosstalkMap map(device);
    EXPECT_EQ(map.total_pairs(), 4);

    // Degree profile: one coupler (the middle rung) has 2 partners,
    // six couplers have 1, none have more.
    std::map<std::size_t, std::int32_t> degree_histogram;
    for (std::int32_t c = 0; c < 7; ++c)
        ++degree_histogram[map.neighbors(c).size()];
    EXPECT_EQ(degree_histogram[1], 6);
    EXPECT_EQ(degree_histogram[2], 1);
}

TEST(CrosstalkTest, PairsAreDisjointAndEndpointAdjacent)
{
    // The defining property, checked directly on a nontrivial device:
    // every reported pair is vertex-disjoint with pairwise-adjacent
    // endpoints, in one of the two orientations.
    auto device = arch::smallest_arch(arch::ArchKind::Sycamore, 12);
    CrosstalkMap map(device);
    const auto& couplers = device.couplers();
    const auto& g = device.connectivity();
    auto n = static_cast<std::int32_t>(couplers.size());
    std::int64_t seen = 0;
    for (std::int32_t c = 0; c < n; ++c) {
        const auto& e = couplers[static_cast<std::size_t>(c)];
        for (std::int32_t d : map.neighbors(c)) {
            const auto& f = couplers[static_cast<std::size_t>(d)];
            EXPECT_TRUE(e.a != f.a && e.a != f.b && e.b != f.a &&
                        e.b != f.b)
                << "couplers " << c << " and " << d << " share a qubit";
            bool straight = g.has_edge(e.a, f.a) && g.has_edge(e.b, f.b);
            bool crossed = g.has_edge(e.a, f.b) && g.has_edge(e.b, f.a);
            EXPECT_TRUE(straight || crossed)
                << "couplers " << c << " and " << d << " not parallel";
            ++seen;
        }
    }
    // Each unordered pair appears once per direction.
    EXPECT_EQ(seen, 2 * map.total_pairs());
    EXPECT_GT(map.total_pairs(), 0);
}

TEST(CrosstalkTest, ListsAreSymmetricSortedAndDeduplicated)
{
    for (arch::ArchKind kind :
         {arch::ArchKind::Grid, arch::ArchKind::HeavyHex,
          arch::ArchKind::Hexagon}) {
        auto device = arch::smallest_arch(kind, 10);
        CrosstalkMap map(device);
        auto n = static_cast<std::int32_t>(device.couplers().size());
        for (std::int32_t c = 0; c < n; ++c) {
            const auto& list = map.neighbors(c);
            EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
            EXPECT_EQ(std::adjacent_find(list.begin(), list.end()),
                      list.end())
                << "duplicates in coupler " << c << "'s list";
            for (std::int32_t d : list) {
                const auto& back = map.neighbors(d);
                EXPECT_NE(std::find(back.begin(), back.end(), c),
                          back.end())
                    << "asymmetric pair (" << c << "," << d << ")";
            }
        }
        // total_pairs counts each unordered pair exactly once.
        EXPECT_EQ(static_cast<std::int64_t>(
                      pair_set(map, n).size()),
                  map.total_pairs());
    }
}

} // namespace
} // namespace permuq::core
