/**
 * @file
 * Cross-module integration tests: the full pipeline from problem
 * generation through compilation, validation, lowering and simulation,
 * plus the cross-compiler relationships the evaluation depends on
 * (fixed seeds; the expectations were verified against the bench
 * harness).
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/qaoa.h"

namespace permuq {
namespace {

TEST(IntegrationTest, FullPipelineOnEveryArchitecture)
{
    // problem -> compile -> validate -> metrics -> qasm, across the
    // whole architecture zoo.
    for (auto kind :
         {arch::ArchKind::Line, arch::ArchKind::Grid,
          arch::ArchKind::Sycamore, arch::ArchKind::HeavyHex,
          arch::ArchKind::Hexagon, arch::ArchKind::Lattice3D}) {
        SCOPED_TRACE(arch::to_string(kind));
        auto device = arch::smallest_arch(kind, 27);
        auto problem = problem::random_graph(27, 0.35, 101);
        auto result = core::compile(device, problem);
        circuit::expect_valid(result.circuit, device, problem);
        auto metrics = circuit::compute_metrics(result.circuit);
        EXPECT_EQ(metrics.compute_gates, problem.num_edges());
        EXPECT_LE(metrics.depth, 10 * device.num_qubits() + 64);
        auto qasm = circuit::to_qasm(result.circuit);
        EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    }
}

TEST(IntegrationTest, OursBeatsWeakBaselinesOnCx)
{
    // The headline relationship of Figs 20-23 at a fixed medium size:
    // ours needs fewer CX than QAIM and Paulihedral on both archs.
    for (auto kind :
         {arch::ArchKind::HeavyHex, arch::ArchKind::Sycamore}) {
        SCOPED_TRACE(arch::to_string(kind));
        auto device = arch::smallest_arch(kind, 96);
        auto problem = problem::random_graph(96, 0.3, 103);
        // Fig 20-23 are about the full hybrid; pin against PERMUQ_TIER.
        core::CompilerOptions options;
        options.tier = core::CompileTier::Best;
        auto ours = core::compile(device, problem, options);
        auto qaim = baselines::qaim_like(device, problem);
        auto pauli = baselines::paulihedral_like(device, problem);
        EXPECT_LT(ours.metrics.cx_count, qaim.metrics.cx_count);
        EXPECT_LT(ours.metrics.cx_count, pauli.metrics.cx_count);
        EXPECT_LT(ours.metrics.depth, pauli.metrics.depth);
    }
}

TEST(IntegrationTest, DenseInputsTriggerTheStructuredCandidate)
{
    // Fig 17's crossover: on a clique the selector must not stay with
    // pure greedy (the ATA/hybrid candidate wins there).
    auto device = arch::smallest_arch(arch::ArchKind::Sycamore, 100);
    auto problem = graph::Graph::clique(100);
    auto result = core::compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_NE(result.selected, "greedy");
}

TEST(IntegrationTest, NoisySimulationAgreesWithMetricsOrdering)
{
    // The compiled circuit with more CX on the same device accumulates
    // more simulated error at fixed angles.
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 11, 0.02);
    auto problem = problem::random_graph(10, 0.4, 107);
    core::CompilerOptions best;
    best.tier = core::CompileTier::Best;
    auto ours = core::compile(device, problem, best);
    auto pauli = baselines::paulihedral_like(device, problem);
    ASSERT_LT(ours.metrics.cx_count, pauli.metrics.cx_count);
    sim::QaoaAngles angles{{0.5}, {0.4}};
    sim::NoisySimOptions options;
    options.trajectories = 48;
    options.shots = 48000;
    double e_ours = sim::noisy_expectation(problem, ours.circuit, noise,
                                           angles, options);
    double e_pauli = sim::noisy_expectation(problem, pauli.circuit,
                                            noise, angles, options);
    EXPECT_GT(e_ours, e_pauli);
}

TEST(IntegrationTest, CompilationIsReproducibleAcrossRuns)
{
    // Byte-level determinism of the whole pipeline, including QASM.
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 48);
    auto problem = problem::random_graph(48, 0.4, 109);
    auto a = core::compile(device, problem);
    auto b = core::compile(device, problem);
    EXPECT_EQ(circuit::to_qasm(a.circuit), circuit::to_qasm(b.circuit));
}

TEST(IntegrationTest, SeedsChangeInstancesNotValidity)
{
    auto device = arch::smallest_arch(arch::ArchKind::Grid, 36);
    std::int64_t distinct_cx = 0;
    std::int64_t last = -1;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto problem = problem::random_graph(36, 0.4, seed);
        auto result = core::compile(device, problem);
        circuit::expect_valid(result.circuit, device, problem);
        if (result.metrics.cx_count != last)
            ++distinct_cx;
        last = result.metrics.cx_count;
    }
    EXPECT_GE(distinct_cx, 3); // different instances, different costs
}

} // namespace
} // namespace permuq
