/**
 * @file
 * Tests of the 2-local Hamiltonian dynamics module: term unitaries vs
 * analytic states, exact-vs-Trotter convergence, energy conservation,
 * and the commuting-Ising zero-error property.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "arch/coupling_graph.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "problem/hamiltonians.h"
#include "sim/hamiltonian.h"

namespace permuq::sim {
namespace {

SpinHamiltonian
make_model(SpinModel model, graph::Graph interactions, double j = 0.7)
{
    SpinHamiltonian h;
    h.interactions = std::move(interactions);
    h.model = model;
    h.coupling = j;
    return h;
}

Statevector
random_state(std::int32_t n, std::uint64_t seed)
{
    Statevector sv(n);
    Xoshiro256 rng(seed);
    for (std::int32_t q = 0; q < n; ++q) {
        sv.apply_h(q);
        sv.apply_rz(q, rng.next_double() * 3.0);
        sv.apply_rx(q, rng.next_double() * 2.0);
    }
    return sv;
}

circuit::Circuit
compile_for(const graph::Graph& interactions)
{
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex,
                                      interactions.num_vertices());
    return core::compile(device, interactions).circuit;
}

TEST(TwoQubitGateTest, MatchesSwapAndCx)
{
    // apply_two_qubit with the SWAP matrix must equal apply_swap.
    std::array<Statevector::Amplitude, 16> swap{};
    swap[0] = 1;
    swap[6] = 1; // |01> -> |10>
    swap[9] = 1; // |10> -> |01>
    swap[15] = 1;
    auto a = random_state(4, 3);
    auto b = a;
    a.apply_two_qubit(swap, 1, 3);
    b.apply_swap(1, 3);
    EXPECT_GT(state_fidelity(a, b), 1.0 - 1e-12);
}

TEST(HamiltonianTest, EnergyOfBasisStates)
{
    // Single ZZ term: <00|H|00> = J, <01|H|01> = -J.
    graph::Graph edge(2);
    edge.add_edge(0, 1);
    auto h = make_model(SpinModel::Ising, edge, 0.9);
    Statevector zero(2);
    EXPECT_NEAR(energy_expectation(h, zero), 0.9, 1e-12);
    Statevector one(2);
    one.apply_x(0);
    EXPECT_NEAR(energy_expectation(h, one), -0.9, 1e-12);
}

TEST(HamiltonianTest, HeisenbergGroundStateOfTwoSpins)
{
    // H = J (XX+YY+ZZ): the singlet has energy -3J.
    graph::Graph edge(2);
    edge.add_edge(0, 1);
    auto h = make_model(SpinModel::Heisenberg, edge, 1.0);
    Statevector singlet(2);
    // (|01> - |10>)/sqrt(2)
    auto& amp = singlet.amplitudes_mut();
    amp[0] = 0;
    amp[1] = 1.0 / std::sqrt(2.0);
    amp[2] = -1.0 / std::sqrt(2.0);
    EXPECT_NEAR(energy_expectation(h, singlet), -3.0, 1e-12);
}

TEST(HamiltonianTest, ExactEvolutionConservesEnergyAndNorm)
{
    auto h = make_model(SpinModel::Heisenberg,
                        problem::nnn_ising_1d(6), 0.5);
    auto state = random_state(6, 7);
    double e0 = energy_expectation(h, state);
    exact_evolution(h, state, 1.2, 400);
    EXPECT_NEAR(state.norm_sq(), 1.0, 1e-9);
    EXPECT_NEAR(energy_expectation(h, state), e0, 1e-6);
}

TEST(HamiltonianTest, ExactEvolutionMatchesAnalyticTwoSpin)
{
    // Two-spin XY from |01>: P(|10>, t) = sin^2(2 J t).
    graph::Graph edge(2);
    edge.add_edge(0, 1);
    auto h = make_model(SpinModel::XY, edge, 0.8);
    Statevector state(2);
    state.apply_x(0); // |01>
    double t = 0.6;
    exact_evolution(h, state, t, 400);
    auto p = state.probabilities();
    EXPECT_NEAR(p[2], std::pow(std::sin(2 * 0.8 * t), 2), 1e-6);
    EXPECT_NEAR(p[1], std::pow(std::cos(2 * 0.8 * t), 2), 1e-6);
}

TEST(TrotterTest, IsingIsExactInOneStep)
{
    // All ZZ terms commute: one Trotter step is the exact evolution.
    auto interactions = problem::nnn_ising_1d(6);
    auto h = make_model(SpinModel::Ising, interactions, 0.4);
    auto compiled = compile_for(interactions);
    auto exact = random_state(6, 11);
    auto trotter = exact;
    exact_evolution(h, exact, 0.9, 400);
    trotter_evolution(h, compiled, trotter, 0.9, 1);
    EXPECT_GT(state_fidelity(exact, trotter), 1.0 - 1e-6);
}

TEST(TrotterTest, ErrorVanishesWithStepCount)
{
    auto interactions = problem::nnn_ising_1d(6);
    auto h = make_model(SpinModel::Heisenberg, interactions, 0.4);
    auto compiled = compile_for(interactions);
    auto exact = random_state(6, 13);
    exact_evolution(h, exact, 0.8, 400);

    double prev_err = 1.0;
    for (std::int32_t steps : {1, 4, 16}) {
        auto trotter = random_state(6, 13);
        trotter_evolution(h, compiled, trotter, 0.8, steps);
        double err = 1.0 - state_fidelity(exact, trotter);
        EXPECT_LT(err, prev_err + 1e-9);
        prev_err = err;
    }
    EXPECT_LT(prev_err, 1e-3);
}

TEST(TrotterTest, AnyCompiledOrderIsValid)
{
    // Two different compilations (different gate orders) must converge
    // to the same exact state.
    auto interactions = problem::nnn_xy_2d(2, 3);
    auto h = make_model(SpinModel::Heisenberg, interactions, 0.3);
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 6);
    auto ours = core::compile(device, interactions).circuit;
    core::CompilerOptions greedy_options;
    greedy_options.use_ata_prediction = false;
    greedy_options.smart_placement = false;
    auto other =
        core::compile(device, interactions, greedy_options).circuit;

    auto exact = random_state(6, 17);
    exact_evolution(h, exact, 0.5, 400);
    auto t1 = random_state(6, 17);
    auto t2 = random_state(6, 17);
    trotter_evolution(h, ours, t1, 0.5, 32);
    trotter_evolution(h, other, t2, 0.5, 32);
    EXPECT_GT(state_fidelity(exact, t1), 0.999);
    EXPECT_GT(state_fidelity(exact, t2), 0.999);
}

TEST(TrotterTest, EnergyTrackedThroughEvolution)
{
    auto interactions = problem::nnn_ising_1d(5);
    auto h = make_model(SpinModel::Heisenberg, interactions, 0.5);
    auto compiled = compile_for(interactions);
    auto state = random_state(5, 19);
    double e0 = energy_expectation(h, state);
    trotter_evolution(h, compiled, state, 1.0, 64);
    // Trotterized evolution conserves energy up to Trotter error.
    EXPECT_NEAR(energy_expectation(h, state), e0, 0.05);
}

} // namespace
} // namespace permuq::sim
