/**
 * @file
 * Tests of the circuit IR: mapping tracking, ASAP depth, metrics with
 * CPHASE+SWAP merging, and structural validation.
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/circuit.h"
#include "circuit/mapping.h"
#include "circuit/metrics.h"
#include "common/error.h"
#include "graph/graph.h"

namespace permuq::circuit {
namespace {

TEST(MappingTest, IdentityPrefix)
{
    Mapping m(3, 5);
    EXPECT_EQ(m.physical_of(2), 2);
    EXPECT_EQ(m.logical_at(2), 2);
    EXPECT_EQ(m.logical_at(4), kInvalidQubit);
}

TEST(MappingTest, SwapKeepsInverseConsistent)
{
    Mapping m(3, 4);
    m.apply_swap(0, 3); // logical 0 moves to empty position 3
    EXPECT_EQ(m.physical_of(0), 3);
    EXPECT_EQ(m.logical_at(0), kInvalidQubit);
    EXPECT_EQ(m.logical_at(3), 0);
    m.apply_swap(1, 2);
    EXPECT_EQ(m.physical_of(1), 2);
    EXPECT_EQ(m.physical_of(2), 1);
}

TEST(MappingTest, ExplicitPlacementValidation)
{
    EXPECT_NO_THROW(Mapping({3, 1, 0}, 4));
    EXPECT_THROW(Mapping({0, 0}, 3), FatalError);  // duplicate target
    EXPECT_THROW(Mapping({0, 5}, 3), FatalError);  // out of range
}

TEST(CircuitTest, AsapDepthPacksIndependentOps)
{
    Circuit c(Mapping(4, 4));
    c.add_compute(0, 1);
    c.add_compute(2, 3); // disjoint -> same cycle
    EXPECT_EQ(c.depth(), 1);
    c.add_compute(1, 2); // depends on both -> next cycle
    EXPECT_EQ(c.depth(), 2);
    EXPECT_EQ(c.ops()[0].cycle, 0);
    EXPECT_EQ(c.ops()[1].cycle, 0);
    EXPECT_EQ(c.ops()[2].cycle, 1);
}

TEST(CircuitTest, TracksLogicalOperands)
{
    Circuit c(Mapping(3, 3));
    c.add_swap(0, 1);
    const auto& op = c.add_compute(1, 2);
    EXPECT_EQ(op.a, 0); // logical 0 moved to position 1
    EXPECT_EQ(op.b, 2);
    EXPECT_EQ(c.final_mapping().logical_at(1), 0);
}

TEST(CircuitTest, BarrierSerializes)
{
    Circuit c(Mapping(4, 4));
    c.add_compute(0, 1);
    c.barrier();
    c.add_compute(2, 3);
    EXPECT_EQ(c.depth(), 2);
}

TEST(CircuitTest, AppendCircuitRequiresMatchingMapping)
{
    Circuit a(Mapping(2, 2));
    a.add_swap(0, 1);
    Circuit wrong(Mapping(2, 2));
    EXPECT_THROW(a.append_circuit(wrong), FatalError);

    Circuit right(a.final_mapping());
    right.add_compute(0, 1);
    EXPECT_NO_THROW(a.append_circuit(right));
    EXPECT_EQ(a.num_compute(), 1);
}

TEST(CircuitTest, ComputeOnEmptyPositionPanics)
{
    Circuit c(Mapping(1, 3));
    EXPECT_THROW(c.add_compute(0, 2), PanicError);
}

TEST(MetricsTest, CxCounting)
{
    Circuit c(Mapping(4, 4));
    c.add_compute(0, 1); // 2 CX
    c.add_swap(2, 3);    // 3 CX
    auto m = compute_metrics(c);
    EXPECT_EQ(m.cx_count, 5);
    EXPECT_EQ(m.merged_pairs, 0);
}

TEST(MetricsTest, ComputeSwapMergesTo3Cx)
{
    Circuit c(Mapping(2, 2));
    c.add_compute(0, 1);
    c.add_swap(0, 1); // same pair, adjacent cycles -> merged
    auto m = compute_metrics(c);
    EXPECT_EQ(m.merged_pairs, 1);
    EXPECT_EQ(m.cx_count, 3);
}

TEST(MetricsTest, SwapComputeMergesToo)
{
    Circuit c(Mapping(2, 2));
    c.add_swap(0, 1);
    c.add_compute(0, 1);
    auto m = compute_metrics(c);
    EXPECT_EQ(m.merged_pairs, 1);
    EXPECT_EQ(m.cx_count, 3);
}

TEST(MetricsTest, InterveningOpBlocksMerge)
{
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 1);
    c.add_compute(1, 2); // touches qubit 1 in between
    c.add_swap(0, 1);
    auto m = compute_metrics(c);
    EXPECT_EQ(m.merged_pairs, 0);
    EXPECT_EQ(m.cx_count, 2 + 2 + 3);
}

TEST(MetricsTest, TwoComputesDoNotMerge)
{
    // Merging requires one compute and one swap.
    Circuit c(Mapping(2, 2));
    c.add_swap(0, 1);
    c.add_swap(0, 1);
    auto m = compute_metrics(c);
    EXPECT_EQ(m.merged_pairs, 0);
    EXPECT_EQ(m.cx_count, 6);
}

TEST(MetricsTest, FidelityUnderNoise)
{
    auto dev = arch::make_line(2);
    auto noise = arch::NoiseModel::calibrated(dev, 3);
    Circuit c(Mapping(2, 2));
    c.add_compute(0, 1);
    auto m = compute_metrics(c, &noise);
    double e = noise.cx_error(0, 1);
    EXPECT_NEAR(m.fidelity, (1 - e) * (1 - e), 1e-12);
}

TEST(ValidateTest, AcceptsCorrectCircuit)
{
    auto dev = arch::make_line(3);
    graph::Graph problem(3);
    problem.add_edge(0, 1);
    problem.add_edge(0, 2);
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 1);
    c.add_swap(1, 2);
    c.add_compute(1, 2); // logical 0 at 1 after... no: swap moved 1<->2
    // After swap(1,2): position1 holds logical 2. compute(1,2)? That is
    // logicals (2,1) which is not an edge; fix by computing (0,?).
    auto report = validate(c, dev, problem);
    EXPECT_FALSE(report.ok); // (2,1) is not an edge
}

TEST(ValidateTest, FullyValid)
{
    auto dev = arch::make_line(3);
    graph::Graph problem(3);
    problem.add_edge(0, 1);
    problem.add_edge(0, 2);
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 1); // (0,1)
    c.add_swap(0, 1);    // logical 0 -> position 1
    c.add_compute(1, 2); // logicals (0,2)
    EXPECT_TRUE(validate(c, dev, problem).ok);
    EXPECT_NO_THROW(expect_valid(c, dev, problem));
}

TEST(ValidateTest, DetectsNonCoupler)
{
    auto dev = arch::make_line(3);
    graph::Graph problem(3);
    problem.add_edge(0, 2);
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 2); // not physically coupled
    EXPECT_FALSE(validate(c, dev, problem).ok);
}

TEST(ValidateTest, DetectsMissingGate)
{
    auto dev = arch::make_line(3);
    graph::Graph problem(3);
    problem.add_edge(0, 1);
    problem.add_edge(1, 2);
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 1);
    auto report = validate(c, dev, problem);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.message.find("never executed"), std::string::npos);
}

TEST(ValidateTest, DetectsDuplicateGate)
{
    auto dev = arch::make_line(2);
    graph::Graph problem(2);
    problem.add_edge(0, 1);
    Circuit c(Mapping(2, 2));
    c.add_compute(0, 1);
    c.add_compute(0, 1);
    auto report = validate(c, dev, problem);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.message.find("2 times"), std::string::npos);
}

TEST(ValidateTest, CollectsAllViolationsWithOpIndices)
{
    // One circuit breaking three rules at once: a duplicated edge, a
    // spurious (non-edge) compute, and a never-executed edge.
    auto dev = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 1);
    problem.add_edge(2, 3);
    Circuit c(Mapping(4, 4));
    c.add_compute(0, 1); // ok: edge (0,1)
    c.add_compute(0, 1); // duplicate of (0,1)
    c.add_compute(1, 2); // logicals (1,2): not a problem edge
    // edge (2,3) never executed

    auto report = validate(c, dev, problem);
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.violations.size(), 3u);

    // Op-stream violations first, with the offending op's index.
    EXPECT_EQ(report.violations[0].op_index, 2);
    EXPECT_NE(report.violations[0].message.find("non-edge"),
              std::string::npos);
    // Then per-edge accounting, anchored to the whole circuit.
    EXPECT_EQ(report.violations[1].op_index, -1);
    EXPECT_NE(report.violations[1].message.find("2 times"),
              std::string::npos);
    EXPECT_EQ(report.violations[2].op_index, -1);
    EXPECT_NE(report.violations[2].message.find("never executed"),
              std::string::npos);

    // The historical single-message interface mirrors the first entry.
    EXPECT_EQ(report.message, report.violations[0].message);
}

TEST(ValidateTest, ViolationListEmptyWhenValid)
{
    auto dev = arch::make_line(2);
    graph::Graph problem(2);
    problem.add_edge(0, 1);
    Circuit c(Mapping(2, 2));
    c.add_compute(0, 1);
    auto report = validate(c, dev, problem);
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.violations.empty());
    EXPECT_TRUE(report.message.empty());
}

} // namespace
} // namespace permuq::circuit
