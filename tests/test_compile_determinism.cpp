/**
 * @file
 * Bit-identity guarantees of the compiler after the incremental-engine
 * rework: golden circuit hashes frozen from the pre-rework
 * implementation, invariance of the output under the worker thread
 * count (the parallel candidate materialization and multi-start
 * fan-out must not leak scheduling order into the result), determinism
 * of the multi-start winner, and the shared shortest-path walk being
 * swap-for-swap identical to the routine it replaced.
 */
#include <gtest/gtest.h>

#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/parallel.h"
#include "core/compiler.h"
#include "graph/routing.h"
#include "problem/generators.h"

namespace permuq {
namespace {

std::uint64_t
circuit_hash(const circuit::Circuit& c)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const auto& op : c.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.p)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.q)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.cycle)));
    }
    mix(static_cast<std::uint64_t>(c.depth()));
    mix(static_cast<std::uint64_t>(c.num_compute()));
    mix(static_cast<std::uint64_t>(c.num_swaps()));
    for (std::int32_t l = 0; l < c.final_mapping().num_logical(); ++l)
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(c.final_mapping().physical_of(l))));
    return h;
}

arch::CouplingGraph
ring_with_chords()
{
    std::vector<VertexPair> couplers;
    for (std::int32_t i = 0; i < 12; ++i)
        couplers.emplace_back(i, (i + 1) % 12);
    couplers.emplace_back(0, 6);
    couplers.emplace_back(3, 9);
    couplers.emplace_back(2, 7);
    return arch::make_custom(12, couplers, "ring-with-chords");
}

struct GoldenCase
{
    arch::ArchKind kind;
    std::int32_t n;
    double density;
    std::uint64_t seed;
    bool crosstalk;
    bool noise;
    std::uint64_t hash;
};

// Frozen from the implementation as of PR 1 (hash-map indices, full
// per-cycle coupler scans, serial single-start pipeline). The reworked
// engine must reproduce these outputs bit for bit.
const GoldenCase kGolden[] = {
    {arch::ArchKind::HeavyHex, 32, 0.3, 17, false, false,
     0x2bf117cd5e38403aull},
    {arch::ArchKind::HeavyHex, 64, 0.5, 29, false, false,
     0x46d9410744d8eddaull},
    {arch::ArchKind::Sycamore, 64, 0.3, 7, false, false,
     0x08b5abe534cd92efull},
    {arch::ArchKind::Grid, 36, 0.4, 11, false, false,
     0x606ec4e52e4bf6ffull},
    {arch::ArchKind::Hexagon, 36, 0.3, 13, false, false,
     0x41c34a84125fbd12ull},
    {arch::ArchKind::Line, 16, 0.4, 5, false, false,
     0xdf4402e979ee20dcull},
    {arch::ArchKind::Grid, 25, 0.5, 3, true, false,
     0x2c018a7b5ce54cd3ull},
    {arch::ArchKind::HeavyHex, 32, 0.3, 19, false, true,
     0x9e3c04f9262ba47cull},
    {arch::ArchKind::Custom, 0, 0.0, 0, false, false,
     0x640245cc9244b2d6ull},
};

std::uint64_t
compile_case_hash(const GoldenCase& c, std::int32_t trials)
{
    core::CompilerOptions options;
    // These hashes pin the Best pipeline; stay put under PERMUQ_TIER.
    options.tier = core::CompileTier::Best;
    arch::CouplingGraph device = c.kind == arch::ArchKind::Custom
                                     ? ring_with_chords()
                                     : arch::smallest_arch(c.kind, c.n);
    auto problem = c.kind == arch::ArchKind::Custom
                       ? problem::random_graph(12, 0.4, 43)
                       : problem::random_graph(c.n, c.density, c.seed);
    options.crosstalk_aware = c.crosstalk;
    options.num_placement_trials = trials;
    auto noise = arch::NoiseModel::calibrated(device, 8, 1e-2, 2e-2, 1.2);
    if (c.noise)
        options.noise = &noise;
    auto result = core::compile(device, problem, options);
    return circuit_hash(result.circuit);
}

TEST(CompileDeterminismTest, MatchesPreReworkGoldenHashes)
{
    for (const auto& c : kGolden)
        EXPECT_EQ(compile_case_hash(c, 1), c.hash)
            << "arch " << static_cast<int>(c.kind) << " n=" << c.n
            << " seed=" << c.seed;
}

TEST(CompileDeterminismTest, InvariantUnderThreadCount)
{
    // The parallel sections (candidate materialization, multi-start
    // trials) must produce the same circuit at any pool width.
    int saved = common::num_threads();
    for (const auto& c : kGolden) {
        common::set_num_threads(1);
        std::uint64_t h1 = compile_case_hash(c, 1);
        common::set_num_threads(4);
        std::uint64_t h4 = compile_case_hash(c, 1);
        EXPECT_EQ(h1, h4)
            << "arch " << static_cast<int>(c.kind) << " n=" << c.n;
        EXPECT_EQ(h1, c.hash);
    }
    common::set_num_threads(saved);
}

TEST(CompileDeterminismTest, MultiStartInvariantUnderThreadCount)
{
    // 4 placement trials; winner picked by (absolute cost, trial
    // index), so thread scheduling must not affect the result.
    const GoldenCase& c = kGolden[0];
    int saved = common::num_threads();
    common::set_num_threads(1);
    std::uint64_t h1 = compile_case_hash(c, 4);
    common::set_num_threads(2);
    std::uint64_t h2 = compile_case_hash(c, 4);
    common::set_num_threads(8);
    std::uint64_t h8 = compile_case_hash(c, 4);
    common::set_num_threads(saved);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(h1, h8);
}

TEST(CompileDeterminismTest, MultiStartTrialZeroIsSingleStart)
{
    // Trial 0 is defined as the historical deterministic placement, so
    // a multi-start run can only improve on (never silently change)
    // the single-start baseline unless a perturbed trial wins.
    const GoldenCase& c = kGolden[3];
    core::CompilerOptions options;
    options.tier = core::CompileTier::Best;
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, c.seed);
    auto single = core::compile(device, problem, options);
    options.num_placement_trials = 3;
    auto multi = core::compile(device, problem, options);
    double alpha = options.alpha;
    auto cost = [&](const circuit::Metrics& m) {
        return alpha * m.depth + (1.0 - alpha) * m.cx_count;
    };
    EXPECT_LE(cost(multi.metrics), cost(single.metrics));
}

TEST(CompileDeterminismTest, WalkTowardMatchesInlineReference)
{
    // The shared walk must be swap-for-swap identical to the loop it
    // replaced in route_remaining/focus mode/router_util.
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 27);
    const auto& dist = device.distances();
    const auto& g = device.connectivity();
    for (std::int32_t from = 0; from < device.num_qubits(); from += 3) {
        for (std::int32_t to = 0; to < device.num_qubits(); to += 5) {
            if (from == to)
                continue;
            // Reference: the historical hand-inlined walk.
            std::vector<std::pair<std::int32_t, std::int32_t>> ref;
            std::int32_t cur = from;
            while (dist.at(cur, to) > 1) {
                std::int32_t d = dist.at(cur, to);
                std::int32_t next = kInvalidQubit;
                for (std::int32_t nb : g.neighbors(cur)) {
                    if (dist.at(nb, to) < d) {
                        next = nb;
                        break;
                    }
                }
                ASSERT_NE(next, kInvalidQubit);
                ref.emplace_back(cur, next);
                cur = next;
            }
            std::vector<std::pair<std::int32_t, std::int32_t>> got;
            std::int32_t end = graph::walk_toward(
                g, dist, from, to,
                [&](std::int32_t a, std::int32_t b) {
                    got.emplace_back(a, b);
                });
            EXPECT_EQ(got, ref);
            EXPECT_EQ(end, cur);
        }
    }
}

} // namespace
} // namespace permuq
