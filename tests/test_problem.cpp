/**
 * @file
 * Tests of the problem-graph generators (paper §7.1): density control,
 * regularity, determinism, and the 2-local Hamiltonian families.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "problem/generators.h"
#include "problem/hamiltonians.h"

namespace permuq::problem {
namespace {

class RandomGraphTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, double>>
{
};

TEST_P(RandomGraphTest, HitsTargetDensity)
{
    auto [n, density] = GetParam();
    auto g = random_graph(n, density, 123);
    std::int64_t pairs = static_cast<std::int64_t>(n) * (n - 1) / 2;
    std::int64_t expect =
        static_cast<std::int64_t>(std::llround(density * pairs));
    EXPECT_EQ(g.num_edges(), expect);
}

TEST_P(RandomGraphTest, Deterministic)
{
    auto [n, density] = GetParam();
    auto a = random_graph(n, density, 5);
    auto b = random_graph(n, density, 5);
    EXPECT_EQ(a.edges(), b.edges());
    auto c = random_graph(n, density, 6);
    if (density > 0.05 && n >= 16) {
        EXPECT_NE(a.edges(), c.edges());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RandomGraphTest,
    ::testing::Combine(::testing::Values(16, 64, 128),
                       ::testing::Values(0.1, 0.3, 0.5)));

TEST(RandomGraphTest, EdgeCases)
{
    EXPECT_EQ(random_graph(0, 0.5, 1).num_edges(), 0);
    EXPECT_EQ(random_graph(1, 1.0, 1).num_edges(), 0);
    EXPECT_EQ(random_graph(10, 0.0, 1).num_edges(), 0);
    EXPECT_EQ(random_graph(10, 1.0, 1).num_edges(), 45);
    EXPECT_THROW(random_graph(10, 1.5, 1), FatalError);
}

class RegularGraphTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>>
{
};

TEST_P(RegularGraphTest, AllDegreesEqual)
{
    auto [n, degree] = GetParam();
    auto g = random_regular_graph(n, degree, 77);
    for (std::int32_t v = 0; v < n; ++v)
        EXPECT_EQ(g.degree(v), degree);
}

INSTANTIATE_TEST_SUITE_P(Cases, RegularGraphTest,
                         ::testing::Values(std::tuple{8, 3},
                                           std::tuple{16, 4},
                                           std::tuple{64, 19},
                                           std::tuple{64, 32},
                                           std::tuple{128, 38}));

TEST(RegularGraphTest, RejectsOddSum)
{
    EXPECT_THROW(random_regular_graph(5, 3, 1), FatalError);
    EXPECT_THROW(random_regular_graph(4, 4, 1), FatalError);
}

TEST(RegularGraphTest, DensityMatching)
{
    // Paper: "set the density of regular graph close to 0.3 or 0.5 by
    // varying the degree of each vertex".
    for (double density : {0.3, 0.5}) {
        auto g = regular_graph_with_density(64, density, 9);
        EXPECT_NEAR(g.density(), density, 0.03);
        std::int32_t d0 = g.degree(0);
        for (std::int32_t v = 1; v < 64; ++v)
            EXPECT_EQ(g.degree(v), d0);
    }
}

TEST(CliqueTest, Complete)
{
    auto g = clique(9);
    EXPECT_EQ(g.num_edges(), 36);
}

TEST(HamiltonianTest, Ising1dEdgeCount)
{
    // NNN chain on n spins: (n-1) + (n-2) couplings.
    auto g = nnn_ising_1d(64);
    EXPECT_EQ(g.num_edges(), 63 + 62);
    EXPECT_TRUE(g.has_edge(10, 11));
    EXPECT_TRUE(g.has_edge(10, 12));
    EXPECT_FALSE(g.has_edge(10, 13));
}

TEST(HamiltonianTest, Xy2dEdgeCount)
{
    // 8x8: nearest 2*8*7, diagonals 2*7*7.
    auto g = nnn_xy_2d(8, 8);
    EXPECT_EQ(g.num_vertices(), 64);
    EXPECT_EQ(g.num_edges(), 2 * 8 * 7 + 2 * 7 * 7);
}

TEST(HamiltonianTest, Heisenberg3dEdgeCount)
{
    // 4x4x4: nearest 3 * 4*4*3 = 144; face diagonals 6 * 3*3*4 = 216.
    auto g = nnn_heisenberg_3d(4, 4, 4);
    EXPECT_EQ(g.num_vertices(), 64);
    EXPECT_EQ(g.num_edges(), 144 + 216);
}

TEST(HamiltonianTest, DegreeBounds)
{
    auto g = nnn_heisenberg_3d(4, 4, 4);
    for (std::int32_t v = 0; v < g.num_vertices(); ++v)
        EXPECT_LE(g.degree(v), 18); // 6 nearest + 12 diagonals
}

} // namespace
} // namespace permuq::problem
