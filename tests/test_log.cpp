/**
 * @file
 * Tests for the structured logging module and the crash flight
 * recorder: level parsing/filtering, text and JSON-lines sinks, the
 * async file writer, flight-ring recording and JSON dumps, and a
 * fork()-based end-to-end crash test (child segfaults, parent parses
 * the dump the signal handler wrote).
 */
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log/flight_recorder.h"
#include "common/log/log.h"

using namespace permuq;

namespace {

/** Restores logger level/format/sink after each test. */
class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        level_before_ = logging::level();
        format_before_ = logging::format();
    }

    void
    TearDown() override
    {
        logging::flush();
        logging::set_sink_stderr();
        logging::set_level(level_before_);
        logging::set_format(format_before_);
        for (const auto& path : cleanup_)
            std::remove(path.c_str());
    }

    std::string
    temp_file(const char* tag)
    {
        std::ostringstream os;
        os << ::testing::TempDir() << "permuq_log_test_" << tag << "_"
           << ::getpid() << ".log";
        cleanup_.push_back(os.str());
        return os.str();
    }

    std::vector<std::string>
    read_lines(const std::string& path)
    {
        std::ifstream in(path);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
        return lines;
    }

  private:
    logging::Level level_before_;
    logging::Format format_before_;
    std::vector<std::string> cleanup_;
};

} // namespace

TEST_F(LogTest, LevelParseRoundTrips)
{
    using logging::Level;
    const std::pair<const char*, Level> table[] = {
        {"debug", Level::Debug}, {"info", Level::Info},
        {"warn", Level::Warn},   {"error", Level::Error},
        {"off", Level::Off},
    };
    for (const auto& [name, want] : table) {
        Level got;
        EXPECT_TRUE(logging::parse_level(name, got)) << name;
        EXPECT_EQ(got, want) << name;
        EXPECT_STREQ(logging::level_name(want), name);
    }
    Level ignored;
    EXPECT_FALSE(logging::parse_level("verbose", ignored));
    EXPECT_FALSE(logging::parse_level("", ignored));
    EXPECT_FALSE(logging::parse_level("Debug", ignored));
}

TEST_F(LogTest, EnabledFollowsThreshold)
{
    using logging::Level;
    logging::set_level(Level::Warn);
    EXPECT_FALSE(logging::enabled(Level::Debug));
    EXPECT_FALSE(logging::enabled(Level::Info));
    EXPECT_TRUE(logging::enabled(Level::Warn));
    EXPECT_TRUE(logging::enabled(Level::Error));
    logging::set_level(Level::Off);
    EXPECT_FALSE(logging::enabled(Level::Error));
    logging::set_level(Level::Debug);
    EXPECT_TRUE(logging::enabled(Level::Debug));
}

TEST_F(LogTest, FormatParse)
{
    logging::Format f;
    EXPECT_TRUE(logging::parse_format("text", f));
    EXPECT_EQ(f, logging::Format::Text);
    EXPECT_TRUE(logging::parse_format("json", f));
    EXPECT_EQ(f, logging::Format::Json);
    EXPECT_FALSE(logging::parse_format("xml", f));
}

TEST_F(LogTest, FileSinkFiltersBelowThreshold)
{
    const std::string path = temp_file("filter");
    ASSERT_TRUE(logging::set_sink_file(path));
    logging::set_format(logging::Format::Text);
    logging::set_level(logging::Level::Warn);

    logging::debug("test", "dropped-debug");
    logging::info("test", "dropped-info");
    logging::warn("test", "kept-warn");
    logging::error("test", "kept-error");
    logging::flush();
    logging::set_sink_stderr();

    const auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("kept-warn"), std::string::npos);
    EXPECT_NE(lines[0].find("warn"), std::string::npos);
    EXPECT_NE(lines[1].find("kept-error"), std::string::npos);
    for (const auto& line : lines)
        EXPECT_EQ(line.find("dropped-"), std::string::npos);
}

TEST_F(LogTest, JsonSinkEmitsOneObjectPerLine)
{
    const std::string path = temp_file("json");
    ASSERT_TRUE(logging::set_sink_file(path));
    logging::set_format(logging::Format::Json);
    logging::set_level(logging::Level::Info);

    logging::info("core.compiler", "plain message");
    // Quotes, backslash, and a control byte must be escaped.
    logging::warn("test", "quote \" backslash \\ tab \t end");
    logging::flush();
    logging::set_sink_stderr();

    const auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts_ns\": "), std::string::npos);
        EXPECT_NE(line.find("\"level\": "), std::string::npos);
    }
    EXPECT_NE(lines[0].find("\"core.compiler\""), std::string::npos);
    EXPECT_NE(lines[0].find("plain message"), std::string::npos);
    EXPECT_NE(lines[1].find("quote \\\" backslash \\\\ tab \\t end"),
              std::string::npos);
    // The raw control byte must not survive into the sink.
    EXPECT_EQ(lines[1].find('\t'), std::string::npos);
}

TEST_F(LogTest, AsyncWriterKeepsEveryRecordInOrder)
{
    const std::string path = temp_file("order");
    ASSERT_TRUE(logging::set_sink_file(path));
    logging::set_format(logging::Format::Text);
    logging::set_level(logging::Level::Info);

    constexpr int kRecords = 2000; // larger than the writer ring
    const std::int64_t dropped_before = logging::dropped();
    for (int i = 0; i < kRecords; ++i)
        logging::info("test.order", "record " + std::to_string(i));
    logging::flush();
    logging::set_sink_stderr();

    const auto lines = read_lines(path);
    const std::int64_t dropped_here =
        logging::dropped() - dropped_before;
    ASSERT_EQ(static_cast<std::int64_t>(lines.size()) + dropped_here,
              kRecords);
    // Whatever survived overflow must still appear in push order.
    std::int64_t last = -1;
    for (const auto& line : lines) {
        const auto pos = line.find("record ");
        ASSERT_NE(pos, std::string::npos) << line;
        const std::int64_t n = std::atoll(line.c_str() + pos + 7);
        EXPECT_GT(n, last);
        last = n;
    }
}

TEST(FlightRecorderTest, NoteAdvancesSequence)
{
    const std::uint64_t before = flight::sequence();
    flight::note(flight::Kind::Note, "test.seq", "first", 1);
    flight::note(flight::Kind::Note, "test.seq", std::string("second"),
                 2);
    EXPECT_EQ(flight::sequence(), before + 2);
}

TEST(FlightRecorderTest, DumpIsParseableAndHoldsRecentRecords)
{
    flight::note(flight::Kind::Note, "test.dump", "needle-detail", 42);
    // A long detail must truncate, not corrupt the ring.
    flight::note(flight::Kind::Note, "test.dump.long",
                 std::string(4 * flight::kDetailBytes, 'x'), 0);

    const std::string path =
        ::testing::TempDir() + "permuq_flight_test_" +
        std::to_string(::getpid()) + ".json";
    ASSERT_TRUE(flight::dump(path.c_str()));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(doc.find("\"permuq_flight\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"test.dump\""), std::string::npos);
    EXPECT_NE(doc.find("\"needle-detail\""), std::string::npos);
    EXPECT_NE(doc.find("\"value\": 42"), std::string::npos);
    // Braces balance, so the dump at least nests like JSON.
    std::int64_t depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
        } else if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
}

TEST(FlightRecorderTest, LogRecordsFeedTheRing)
{
    const std::uint64_t before = flight::sequence();
    const logging::Level level_before = logging::level();
    logging::set_level(logging::Level::Error);
    logging::error("test.flight", "error reaches the flight ring");
    logging::set_level(level_before);
    EXPECT_GT(flight::sequence(), before);
}

TEST(FlightRecorderTest, CrashHandlerWritesDumpOnSigsegv)
{
    // The dump path is fixed at load; relative paths resolve against
    // the cwd at crash time, so point the child at a temp directory.
    const std::string flight_name = flight::dump_path();
    const bool relative = flight_name.empty() || flight_name[0] != '/';
    const std::string dir = ::testing::TempDir();
    const std::string dump_file =
        relative ? dir + flight_name : flight_name;
    std::remove(dump_file.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        if (relative && ::chdir(dir.c_str()) != 0)
            ::_exit(90);
        flight::install_crash_handler();
        flight::note(flight::Kind::Note, "crash.marker",
                     "written before the deliberate segfault", 7);
        std::raise(SIGSEGV);
        ::_exit(91); // not reached: the handler re-raises
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited with " << WEXITSTATUS(status);
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::ifstream in(dump_file);
    ASSERT_TRUE(in.good()) << "no crash dump at " << dump_file;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    std::remove(dump_file.c_str());

    EXPECT_NE(doc.find("\"permuq_flight\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"signal\": 11"), std::string::npos);
    EXPECT_NE(doc.find("\"crash.marker\""), std::string::npos);
    EXPECT_NE(doc.find("\"fatal\""), std::string::npos);
}
