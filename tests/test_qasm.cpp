/**
 * @file
 * Tests of the OpenQASM export: structural checks plus a semantic
 * check that the lowered CX/RZ sequence implements the same unitary
 * as the abstract RZZ/SWAP schedule (verified with the statevector
 * simulator, including the merged CPHASE+SWAP identity).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "arch/coupling_graph.h"
#include "circuit/circuit.h"
#include "circuit/qasm.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/statevector.h"

namespace permuq::circuit {
namespace {

std::int64_t
count_occurrences(const std::string& text, const std::string& what)
{
    std::int64_t count = 0;
    for (std::size_t pos = text.find(what); pos != std::string::npos;
         pos = text.find(what, pos + 1))
        ++count;
    return count;
}

TEST(QasmTest, HeaderAndRegisters)
{
    Circuit c(Mapping(2, 3));
    c.add_compute(0, 1);
    auto qasm = to_qasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_EQ(qasm.find("creg"), std::string::npos);
}

TEST(QasmTest, CxCountMatchesMetrics)
{
    // The emitted cx instructions must agree with the metrics' CX
    // count, including merging.
    auto device = arch::make_grid(3, 3);
    auto problem = problem::random_graph(9, 0.5, 3);
    auto compiled = core::compile(device, problem);
    auto qasm = to_qasm(compiled.circuit);
    auto metrics = compute_metrics(compiled.circuit);
    EXPECT_EQ(count_occurrences(qasm, "cx q["), metrics.cx_count);
}

TEST(QasmTest, UnmergedEmissionIsLarger)
{
    auto device = arch::make_grid(3, 3);
    auto problem = problem::random_graph(9, 0.5, 3);
    auto compiled = core::compile(device, problem);
    QasmOptions unmerged;
    unmerged.merge_pairs = false;
    auto plain = to_qasm(compiled.circuit, unmerged);
    auto merged = to_qasm(compiled.circuit);
    EXPECT_GE(count_occurrences(plain, "cx q["),
              count_occurrences(merged, "cx q["));
}

TEST(QasmTest, FullQaoaHasPreludeAndMeasurements)
{
    Circuit c(Mapping(3, 4));
    c.add_compute(0, 1);
    c.add_compute(1, 2);
    QasmOptions options;
    options.full_qaoa = true;
    auto qasm = to_qasm(c, options);
    EXPECT_EQ(count_occurrences(qasm, "h q["), 3);
    EXPECT_EQ(count_occurrences(qasm, "rx("), 3);
    EXPECT_EQ(count_occurrences(qasm, "measure "), 3);
    EXPECT_NE(qasm.find("creg c[3];"), std::string::npos);
}

/**
 * Interpret the emitted QASM with the statevector simulator (only the
 * gates we emit: h / cx / rz / rx / measure-ignored).
 */
void
run_qasm(const std::string& qasm, sim::Statevector& sv)
{
    std::istringstream in(qasm);
    std::string line;
    auto q_of = [](const std::string& s, std::size_t from) {
        std::size_t lb = s.find("q[", from);
        return std::stoi(s.substr(lb + 2));
    };
    while (std::getline(in, line)) {
        if (line.rfind("cx ", 0) == 0) {
            int a = q_of(line, 0);
            std::size_t comma = line.find(',');
            int b = q_of(line, comma);
            sv.apply_cx(a, b);
        } else if (line.rfind("rz(", 0) == 0) {
            double theta = std::stod(line.substr(3));
            sv.apply_rz(q_of(line, 0), theta);
        } else if (line.rfind("rx(", 0) == 0) {
            double theta = std::stod(line.substr(3));
            sv.apply_rx(q_of(line, 0), theta);
        } else if (line.rfind("h ", 0) == 0) {
            sv.apply_h(q_of(line, 0));
        }
    }
}

TEST(QasmTest, LoweredUnitaryMatchesAbstractSchedule)
{
    // Random small circuits: compare the lowered gate sequence with
    // direct RZZ/SWAP application on a random-ish input state.
    Xoshiro256 rng(9);
    for (int trial = 0; trial < 8; ++trial) {
        std::int32_t n = 4;
        Circuit circ(Mapping(n, n));
        for (int k = 0; k < 10; ++k) {
            auto p = static_cast<std::int32_t>(rng.next_below(n));
            auto q = static_cast<std::int32_t>(rng.next_below(n));
            if (p == q)
                continue;
            if (rng.next_below(2) == 0)
                circ.add_compute(p, q);
            else
                circ.add_swap(p, q);
        }
        QasmOptions options;
        options.gamma = 0.37;

        // Reference: apply the schedule directly. SWAP moves state;
        // compute is RZZ(2*gamma) on the positions.
        sim::Statevector want(n), got(n);
        for (std::int32_t q = 0; q < n; ++q) {
            want.apply_h(q);
            want.apply_rz(q, 0.3 + q); // break symmetry
            got.apply_h(q);
            got.apply_rz(q, 0.3 + q);
        }
        for (const auto& op : circ.ops()) {
            if (op.kind == OpKind::Compute) {
                // cx; rz(2g) target; cx  == RZZ up to global phase:
                // e^{-i g} diag(1, e^{2ig}, e^{2ig}, 1); reproduce the
                // exact lowered unitary for comparison.
                want.apply_cx(op.p, op.q);
                want.apply_rz(op.q, 2.0 * options.gamma);
                want.apply_cx(op.p, op.q);
            } else {
                want.apply_swap(op.p, op.q);
            }
        }
        run_qasm(to_qasm(circ, options), got);
        // Compare amplitudes up to global phase.
        std::complex<double> phase(0, 0);
        double err = 0.0;
        for (std::size_t i = 0; i < want.amplitudes().size(); ++i) {
            if (std::abs(want.amplitudes()[i]) > 1e-9 &&
                std::abs(phase) < 0.5)
                phase = got.amplitudes()[i] / want.amplitudes()[i];
        }
        ASSERT_GT(std::abs(phase), 0.5);
        for (std::size_t i = 0; i < want.amplitudes().size(); ++i)
            err += std::abs(got.amplitudes()[i] -
                            phase * want.amplitudes()[i]);
        EXPECT_LT(err, 1e-9) << "trial " << trial;
    }
}

TEST(DiagramTest, ShowsOpsAtTheirCycles)
{
    Circuit c(Mapping(3, 3));
    c.add_compute(0, 1);
    c.add_swap(1, 2);
    auto diagram = to_diagram(c);
    // Three qubit lines, 2 cycles wide.
    EXPECT_EQ(count_occurrences(diagram, "\n"), 3);
    EXPECT_NE(diagram.find("-o-"), std::string::npos);
    EXPECT_NE(diagram.find("-x-"), std::string::npos);
    // Qubit 0 has the compute in cycle 0 and idles in cycle 1.
    EXPECT_NE(diagram.find("q0  -o----"), std::string::npos);
}

} // namespace
} // namespace permuq::circuit
