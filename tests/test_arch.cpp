/**
 * @file
 * Tests of the architecture topologies (paper Fig 1, §7.1): structural
 * counts, regularity properties, unit/path metadata, and noise models.
 */
#include <gtest/gtest.h>

#include <set>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/error.h"

namespace permuq::arch {
namespace {

TEST(LineTest, Structure)
{
    auto dev = make_line(7);
    EXPECT_EQ(dev.kind(), ArchKind::Line);
    EXPECT_EQ(dev.num_qubits(), 7);
    EXPECT_EQ(dev.connectivity().num_edges(), 6);
    EXPECT_EQ(dev.num_units(), 1);
    EXPECT_EQ(dev.longest_path().size(), 7u);
    EXPECT_EQ(dev.distance(0, 6), 6);
}

TEST(GridTest, Structure)
{
    auto dev = make_grid(4, 5);
    EXPECT_EQ(dev.num_qubits(), 20);
    // Edges: 4*4 horizontal per row + 5*3 vertical.
    EXPECT_EQ(dev.connectivity().num_edges(), 4 * 4 + 5 * 3);
    EXPECT_EQ(dev.num_units(), 4);
    for (const auto& unit : dev.units())
        EXPECT_EQ(unit.size(), 5u);
    // Manhattan distances.
    EXPECT_EQ(dev.distance(0, 19), 3 + 4);
}

TEST(GridTest, UnitsAreInternalPaths)
{
    auto dev = make_grid(3, 6);
    for (const auto& unit : dev.units())
        for (std::size_t i = 0; i + 1 < unit.size(); ++i)
            EXPECT_TRUE(dev.coupled(unit[i], unit[i + 1]));
}

TEST(SycamoreTest, Structure)
{
    auto dev = make_sycamore(4, 5);
    EXPECT_EQ(dev.num_qubits(), 20);
    EXPECT_EQ(dev.num_units(), 4);
    // No intra-unit couplers (rotated lattice).
    for (const auto& unit : dev.units())
        for (std::size_t i = 0; i + 1 < unit.size(); ++i)
            EXPECT_FALSE(dev.coupled(unit[i], unit[i + 1]));
    // Each row gap is a zig-zag line: 2*cols - 1 couplers.
    EXPECT_EQ(dev.connectivity().num_edges(), 3 * (2 * 5 - 1));
    // Interior vertices have degree 4 like a rotated square lattice.
    std::int32_t deg4 = 0;
    for (std::int32_t q = 0; q < dev.num_qubits(); ++q)
        if (dev.connectivity().degree(q) == 4)
            ++deg4;
    EXPECT_GT(deg4, 0);
}

TEST(SycamoreTest, AlignedVerticalLinksExist)
{
    auto dev = make_sycamore(5, 4);
    for (std::int32_t r = 0; r + 1 < 5; ++r)
        for (std::int32_t c = 0; c < 4; ++c)
            EXPECT_TRUE(dev.coupled(dev.units()[static_cast<std::size_t>(
                                        r)][static_cast<std::size_t>(c)],
                                    dev.units()[static_cast<std::size_t>(
                                        r + 1)][static_cast<std::size_t>(
                                        c)]));
}

TEST(HeavyHexTest, Structure)
{
    auto dev = make_heavy_hex(3, 11);
    // 3 chains of 11 plus 2 gaps x 3 bridges.
    EXPECT_EQ(dev.num_qubits(), 3 * 11 + 2 * 3);
    // Degree <= 3 everywhere (heavy-hex property).
    for (std::int32_t q = 0; q < dev.num_qubits(); ++q)
        EXPECT_LE(dev.connectivity().degree(q), 3);
}

TEST(HeavyHexTest, PathAndOffPathPartition)
{
    auto dev = make_heavy_hex(4, 7);
    const auto& path = dev.longest_path();
    // Path is a simple path over couplers.
    std::set<PhysicalQubit> on_path(path.begin(), path.end());
    EXPECT_EQ(on_path.size(), path.size());
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_TRUE(dev.coupled(path[i - 1], path[i]));
    // Off-path qubits are attached to the path and disjoint from it.
    for (const auto& att : dev.off_path()) {
        EXPECT_EQ(on_path.count(att.off_qubit), 0u);
        EXPECT_TRUE(dev.coupled(
            att.off_qubit,
            path[static_cast<std::size_t>(att.path_index)]));
    }
    EXPECT_EQ(on_path.size() + dev.off_path().size(),
              static_cast<std::size_t>(dev.num_qubits()));
}

TEST(HeavyHexTest, RejectsBadRowLength)
{
    EXPECT_THROW(make_heavy_hex(3, 8), FatalError);
    EXPECT_THROW(make_heavy_hex(3, 5), FatalError);
}

TEST(HexagonTest, Structure)
{
    auto dev = make_hexagon(6, 5);
    EXPECT_EQ(dev.num_qubits(), 30);
    EXPECT_EQ(dev.num_units(), 5); // columns
    // Honeycomb: degree <= 3.
    for (std::int32_t q = 0; q < dev.num_qubits(); ++q)
        EXPECT_LE(dev.connectivity().degree(q), 3);
    // Units are internal vertical paths.
    for (const auto& unit : dev.units())
        for (std::size_t i = 0; i + 1 < unit.size(); ++i)
            EXPECT_TRUE(dev.coupled(unit[i], unit[i + 1]));
}

TEST(HexagonTest, RungsAlternate)
{
    auto dev = make_hexagon(6, 4);
    for (std::int32_t c = 0; c + 1 < 4; ++c) {
        const auto& a = dev.units()[static_cast<std::size_t>(c)];
        const auto& b = dev.units()[static_cast<std::size_t>(c + 1)];
        for (std::int32_t r = 0; r < 6; ++r)
            EXPECT_EQ(dev.coupled(a[static_cast<std::size_t>(r)],
                                  b[static_cast<std::size_t>(r)]),
                      (r + c) % 2 == 0);
    }
}

TEST(Lattice3dTest, Structure)
{
    auto dev = make_lattice3d(3, 3, 3);
    EXPECT_EQ(dev.num_qubits(), 27);
    // 6-neighborhood: 3 * 2*3*3 directed... = 3 faces * 18 edges.
    EXPECT_EQ(dev.connectivity().num_edges(), 3 * 2 * 3 * 3);
    EXPECT_EQ(dev.distance(0, 26), 6);
}

TEST(MumbaiTest, MatchesFalconTopology)
{
    auto dev = make_mumbai();
    EXPECT_EQ(dev.num_qubits(), 27);
    EXPECT_EQ(dev.connectivity().num_edges(), 28);
    for (std::int32_t q = 0; q < 27; ++q)
        EXPECT_LE(dev.connectivity().degree(q), 3);
    EXPECT_EQ(dev.longest_path().size() + dev.off_path().size(), 27u);
}

class SmallestArchTest
    : public ::testing::TestWithParam<std::tuple<ArchKind, std::int32_t>>
{
};

TEST_P(SmallestArchTest, CoversRequestedSize)
{
    auto [kind, n] = GetParam();
    auto dev = smallest_arch(kind, n);
    EXPECT_GE(dev.num_qubits(), n);
    // Not wasteful: at most ~2.5x the request.
    EXPECT_LE(dev.num_qubits(), n * 5 / 2 + 8);
    EXPECT_EQ(dev.kind(), kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SmallestArchTest,
    ::testing::Combine(::testing::Values(ArchKind::Line, ArchKind::Grid,
                                         ArchKind::Sycamore,
                                         ArchKind::HeavyHex,
                                         ArchKind::Hexagon),
                       ::testing::Values(16, 64, 100, 256, 1024)));

TEST(NoiseModelTest, IdealIsZero)
{
    auto dev = make_grid(3, 3);
    auto noise = NoiseModel::ideal(dev);
    EXPECT_TRUE(noise.is_ideal());
    for (const auto& c : dev.couplers())
        EXPECT_DOUBLE_EQ(noise.cx_error(c.a, c.b), 0.0);
}

TEST(NoiseModelTest, CalibratedSpreadAroundMedian)
{
    auto dev = make_grid(8, 8);
    auto noise = NoiseModel::calibrated(dev, 99, 1e-2, 2e-2);
    EXPECT_FALSE(noise.is_ideal());
    double lo = 1.0, hi = 0.0, sum = 0.0;
    for (const auto& c : dev.couplers()) {
        double e = noise.cx_error(c.a, c.b);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
        sum += e;
        EXPECT_GT(e, 0.0);
        EXPECT_LT(e, 0.1);
    }
    EXPECT_LT(lo, hi); // genuine variability
    double avg = sum / dev.connectivity().num_edges();
    EXPECT_GT(avg, 0.5e-2);
    EXPECT_LT(avg, 2.5e-2);
}

TEST(NoiseModelTest, Deterministic)
{
    auto dev = make_grid(4, 4);
    auto a = NoiseModel::calibrated(dev, 5);
    auto b = NoiseModel::calibrated(dev, 5);
    for (const auto& c : dev.couplers())
        EXPECT_DOUBLE_EQ(a.cx_error(c.a, c.b), b.cx_error(c.a, c.b));
}

TEST(NoiseModelTest, RejectsNonCoupler)
{
    auto dev = make_line(4);
    auto noise = NoiseModel::calibrated(dev, 1);
    EXPECT_THROW(noise.cx_error(0, 2), FatalError);
}

} // namespace
} // namespace permuq::arch
