/**
 * @file
 * Region-sharded hierarchical compilation: band planning on the
 * regular architectures (including the Sycamore parity clamp and the
 * degenerate-device edge cases), semantic correctness of sharded
 * output under the Tier B symbolic checker, determinism across thread
 * counts and across repeated runs, the fallback contract on
 * unshardable devices, streaming QASM emission agreeing with the
 * materialized circuit, and the arena/BFS building blocks underneath.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "circuit/op_arena.h"
#include "circuit/qasm.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/compiler.h"
#include "core/shard.h"
#include "graph/components.h"
#include "graph/distance.h"
#include "problem/generators.h"
#include "verify/equivalence.h"

namespace permuq {
namespace {

std::uint64_t
circuit_hash(const circuit::Circuit& c)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const auto& op : c.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.p)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.q)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.cycle)));
    }
    mix(static_cast<std::uint64_t>(c.depth()));
    return h;
}

// ---------------------------------------------------------------- plan

TEST(ShardPlan, GridBandsAreContiguousAndCoverTheDevice)
{
    auto device = arch::make_grid(8, 8);
    auto plan = core::plan_shards(device, 4, 0);
    ASSERT_TRUE(plan.shardable);
    ASSERT_EQ(plan.regions.size(), 4u);
    std::int32_t next = 0;
    for (const auto& region : plan.regions) {
        EXPECT_EQ(region.first_qubit, next);
        EXPECT_EQ(region.num_qubits, region.num_units * 8);
        next += region.num_qubits;
    }
    EXPECT_EQ(next, device.num_qubits());
}

TEST(ShardPlan, SycamoreBandsStartOnEvenRows)
{
    auto device = arch::make_sycamore(10, 6);
    auto plan = core::plan_shards(device, 3, 0);
    ASSERT_TRUE(plan.shardable);
    ASSERT_GE(plan.regions.size(), 2u);
    for (const auto& region : plan.regions)
        EXPECT_EQ(region.first_unit % 2, 0) << "zig-zag parity clamp";
}

TEST(ShardPlan, LineBandsByQubitRange)
{
    auto device = arch::make_line(20);
    auto plan = core::plan_shards(device, 4, 0);
    ASSERT_TRUE(plan.shardable);
    EXPECT_EQ(plan.regions.size(), 4u);
    EXPECT_EQ(plan.regions[0].num_qubits, 5);
}

TEST(ShardPlan, MarginRaisesMinimumBandHeight)
{
    auto device = arch::make_grid(8, 4);
    // Margin 3 => bands of >= 4 rows => at most 2 regions.
    auto plan = core::plan_shards(device, 8, 3);
    ASSERT_TRUE(plan.shardable);
    EXPECT_EQ(plan.regions.size(), 2u);
    for (const auto& region : plan.regions)
        EXPECT_GE(region.num_units, 4);
}

TEST(ShardPlan, UnshardableDevicesAndDegenerateCounts)
{
    // Irregular and bridge-qubit architectures never band.
    EXPECT_FALSE(core::plan_shards(arch::make_heavy_hex(3, 7), 2, 0)
                     .shardable);
    // A single row cannot make two bands.
    EXPECT_FALSE(core::plan_shards(arch::make_grid(1, 16), 4, 0)
                     .shardable);
    // A single-qubit device cannot shard at all.
    EXPECT_FALSE(core::plan_shards(arch::make_line(1), 2, 0).shardable);
    // Region count below two means "off".
    EXPECT_FALSE(core::plan_shards(arch::make_grid(8, 8), 1, 0)
                     .shardable);
}

TEST(ShardPlan, BandDevicesAreExactSubfabrics)
{
    auto device = arch::make_sycamore(8, 5);
    auto plan = core::plan_shards(device, 4, 0);
    ASSERT_TRUE(plan.shardable);
    for (const auto& region : plan.regions) {
        auto band = core::make_band_device(device, region);
        ASSERT_EQ(band.num_qubits(), region.num_qubits);
        // Every band coupler must be a device coupler under the
        // offset translation (exact sub-device, not an approximation).
        for (const auto& link : band.connectivity().edges()) {
            EXPECT_TRUE(device.connectivity().has_edge(
                link.a + region.first_qubit,
                link.b + region.first_qubit))
                << "band coupler " << link.a << "-" << link.b
                << " missing at offset " << region.first_qubit;
        }
    }
}

// ------------------------------------------------------- compile + verify

TEST(ShardCompile, SymbolicallyCorrectOnGrid)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::fabric_local_graph(8, 8, 0.5, 2, 7);
    core::CompilerOptions options;
    options.shard_regions = 4;
    auto result = core::compile(device, problem, options);
    EXPECT_EQ(result.selected, "sharded");
    auto report = verify::check_symbolic(device, problem, result.circuit);
    EXPECT_TRUE(report.ok) << report.summary();
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(ShardCompile, SymbolicallyCorrectOnSycamoreAndLine)
{
    {
        auto device = arch::make_sycamore(8, 4);
        auto problem = problem::fabric_local_graph(8, 4, 0.6, 2, 11);
        core::CompilerOptions options;
        options.shard_regions = 3;
        auto result = core::compile(device, problem, options);
        EXPECT_EQ(result.selected, "sharded");
        auto report =
            verify::check_symbolic(device, problem, result.circuit);
        EXPECT_TRUE(report.ok) << report.summary();
    }
    {
        auto device = arch::make_line(24);
        auto problem = problem::fabric_local_graph(1, 24, 0.5, 3, 13);
        core::CompilerOptions options;
        options.shard_regions = 3;
        auto result = core::compile(device, problem, options);
        EXPECT_EQ(result.selected, "sharded");
        auto report =
            verify::check_symbolic(device, problem, result.circuit);
        EXPECT_TRUE(report.ok) << report.summary();
    }
}

TEST(ShardCompile, ProblemSmallerThanDeviceLeavesEmptyBands)
{
    auto device = arch::make_grid(8, 4);
    // Only 6 program qubits: bands 2..3 own no logicals at all.
    auto problem = problem::fabric_local_graph(2, 3, 0.9, 2, 3);
    core::CompilerOptions options;
    options.shard_regions = 4;
    auto result = core::compile(device, problem, options);
    EXPECT_EQ(result.selected, "sharded");
    auto report = verify::check_symbolic(device, problem, result.circuit);
    EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ShardCompile, DisconnectedProblemStitches)
{
    auto device = arch::make_grid(6, 4);
    // Two far-apart cliques plus isolated vertices in between.
    graph::Graph problem(24);
    problem.add_edge(0, 1);
    problem.add_edge(1, 2);
    problem.add_edge(0, 2);
    problem.add_edge(21, 22);
    problem.add_edge(22, 23);
    // One long-range cross-band edge forces a multi-hop stitch route.
    problem.add_edge(2, 21);
    core::CompilerOptions options;
    options.shard_regions = 3;
    auto result = core::compile(device, problem, options);
    auto report = verify::check_symbolic(device, problem, result.circuit);
    EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ShardCompile, FallsBackOnUnshardableDevice)
{
    auto device = arch::make_heavy_hex(3, 7);
    auto problem = problem::random_graph(12, 0.3, 5);
    core::CompilerOptions sharded;
    sharded.shard_regions = 4;
    core::CompilerOptions off;
    auto a = core::compile(device, problem, sharded);
    auto b = core::compile(device, problem, off);
    EXPECT_EQ(circuit_hash(a.circuit), circuit_hash(b.circuit));
    EXPECT_NE(a.selected, "sharded");
}

TEST(ShardCompile, DeterministicAcrossThreadCountsAndReruns)
{
    auto device = arch::make_grid(8, 6);
    auto problem = problem::fabric_local_graph(8, 6, 0.5, 2, 3);
    core::CompilerOptions options;
    options.shard_regions = 4;
    options.num_placement_trials = 3;

    const int saved = common::num_threads();
    common::set_num_threads(1);
    auto serial = core::compile(device, problem, options);
    common::set_num_threads(4);
    auto parallel = core::compile(device, problem, options);
    auto parallel2 = core::compile(device, problem, options);
    common::set_num_threads(saved);

    EXPECT_EQ(circuit_hash(serial.circuit), circuit_hash(parallel.circuit));
    EXPECT_EQ(circuit_hash(parallel.circuit),
              circuit_hash(parallel2.circuit));
}

TEST(ShardCompile, ReportAttributesBandsAndStitch)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::fabric_local_graph(8, 8, 0.5, 2, 7);
    core::CompilerOptions options;
    options.shard_regions = 4;
    auto result = core::compile(device, problem, options);
    ASSERT_EQ(result.selected, "sharded");
    const core::CompileReport& rep = result.report;

    EXPECT_EQ(rep.selected, "sharded");
    EXPECT_EQ(rep.shard_regions, 4);
    ASSERT_EQ(rep.bands.size(), 4u);
    std::int64_t band_swaps = 0, band_edges = 0;
    for (std::size_t i = 0; i < rep.bands.size(); ++i) {
        const auto& band = rep.bands[i];
        EXPECT_EQ(band.index, static_cast<std::int32_t>(i));
        EXPECT_GT(band.qubits, 0);
        if (band.cx > 0) {
            EXPECT_GT(band.depth, 0) << "band " << i;
        }
        band_swaps += band.swaps;
        band_edges += band.edges;
    }
    // Bands plus the stitch tail account for every swap, and band
    // edges plus stitched cross-band edges cover the problem.
    EXPECT_EQ(band_swaps + rep.stitch_swaps,
              result.metrics.swap_gates);
    EXPECT_EQ(band_edges + rep.stitched_edges,
              static_cast<std::int64_t>(problem.num_edges()));
    EXPECT_GT(rep.stitched_edges, 0);
    EXPECT_GT(rep.schedule_cache_hits + rep.schedule_cache_misses +
                  rep.pull_cache_hits + rep.pull_cache_misses,
              0);
    EXPECT_GT(rep.trials, 0);
    EXPECT_GT(rep.total_seconds, 0.0);
    EXPECT_EQ(rep.depth, result.metrics.depth);

    const std::string json = rep.to_json();
    EXPECT_NE(json.find("\"bands\": ["), std::string::npos);
    EXPECT_NE(json.find("\"stitched_edges\""), std::string::npos);
}

TEST(ShardCompile, ResolvedTierReachesEveryBand)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::fabric_local_graph(8, 8, 0.5, 2, 7);
    core::CompilerOptions options;
    options.shard_regions = 4;
    options.tier = core::CompileTier::Fast;
    auto result = core::compile(device, problem, options);
    ASSERT_EQ(result.selected, "sharded");
    EXPECT_EQ(result.tier, "fast");
    EXPECT_EQ(result.report.tier_served, "fast");
    // The sharder resolves the tier once and stamps it into every
    // band compile: each band runs the single-pass fast pipeline
    // instead of the full multi-start budget.
    ASSERT_EQ(result.report.bands.size(), 4u);
    for (const auto& band : result.report.bands) {
        EXPECT_EQ(band.tier, "fast") << "band " << band.index;
        EXPECT_EQ(band.selected, "fast") << "band " << band.index;
    }
    EXPECT_NE(result.report.to_json().find("\"tier\": \"fast\""),
              std::string::npos);

    // The default (Auto -> best) keeps the historical full budget.
    core::CompilerOptions best = options;
    best.tier = core::CompileTier::Best;
    auto full = core::compile(device, problem, best);
    for (const auto& band : full.report.bands)
        EXPECT_EQ(band.tier, "best") << "band " << band.index;

    // Streamed and materialized sharding agree on band tiers.
    std::ostringstream qasm;
    circuit::QasmStreamWriter writer(qasm, {});
    auto streamed =
        core::shard_compile_stream(device, problem, options, writer);
    ASSERT_EQ(streamed.report.bands.size(),
              result.report.bands.size());
    for (std::size_t i = 0; i < streamed.report.bands.size(); ++i)
        EXPECT_EQ(streamed.report.bands[i].tier,
                  result.report.bands[i].tier)
            << "band " << i;
}

TEST(ShardStream, ReportMatchesMaterializedAttribution)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::fabric_local_graph(8, 8, 0.5, 2, 7);
    core::CompilerOptions options;
    options.shard_regions = 4;
    auto materialized = core::compile(device, problem, options);

    std::ostringstream qasm;
    circuit::QasmStreamWriter writer(qasm, {});
    auto streamed =
        core::shard_compile_stream(device, problem, options, writer);

    const auto& a = materialized.report;
    const auto& b = streamed.report;
    ASSERT_EQ(a.bands.size(), b.bands.size());
    for (std::size_t i = 0; i < a.bands.size(); ++i) {
        EXPECT_EQ(a.bands[i].depth, b.bands[i].depth) << "band " << i;
        EXPECT_EQ(a.bands[i].swaps, b.bands[i].swaps) << "band " << i;
        EXPECT_EQ(a.bands[i].cx, b.bands[i].cx) << "band " << i;
    }
    EXPECT_EQ(a.stitched_edges, b.stitched_edges);
    EXPECT_EQ(a.stitch_swaps, b.stitch_swaps);
    EXPECT_EQ(a.trials, b.trials);
}

TEST(ShardCompile, MetricsMatchAssembledCircuit)
{
    auto device = arch::make_grid(6, 6);
    auto problem = problem::fabric_local_graph(6, 6, 0.4, 2, 17);
    core::CompilerOptions options;
    options.shard_regions = 3;
    auto result = core::compile(device, problem, options);
    auto recomputed = circuit::compute_metrics(result.circuit, nullptr);
    EXPECT_EQ(result.metrics.depth, recomputed.depth);
    EXPECT_EQ(result.metrics.compute_gates, recomputed.compute_gates);
    EXPECT_EQ(result.metrics.swap_gates, recomputed.swap_gates);
    EXPECT_EQ(result.metrics.cx_count, recomputed.cx_count);
}

// ----------------------------------------------------------- streaming

TEST(ShardStream, ByteIdenticalToMaterializedLowering)
{
    auto device = arch::make_grid(8, 4);
    auto problem = problem::fabric_local_graph(8, 4, 0.5, 2, 29);
    core::CompilerOptions options;
    options.shard_regions = 4;

    // Merging is chunk-local, so compare unmerged lowering, where the
    // materialized circuit's single-chunk emission must match the
    // streamed chunks byte for byte.
    circuit::QasmOptions qasm;
    qasm.merge_pairs = false;

    std::ostringstream streamed;
    circuit::QasmStreamWriter writer(streamed, qasm);
    auto stream_result =
        core::shard_compile_stream(device, problem, options, writer);

    auto materialized = core::compile(device, problem, options);
    EXPECT_EQ(streamed.str(), circuit::to_qasm(materialized.circuit, qasm));

    EXPECT_EQ(stream_result.total_ops,
              static_cast<std::int64_t>(materialized.circuit.ops().size()));
    EXPECT_EQ(stream_result.metrics.depth, materialized.metrics.depth);
    EXPECT_EQ(stream_result.metrics.cx_count,
              circuit::compute_metrics(materialized.circuit, nullptr)
                  .cx_count);
    EXPECT_GT(stream_result.peak_circuit_bytes, 0u);
    // Streaming keeps at most one band + stitch tail alive.
    EXPECT_LT(stream_result.peak_circuit_bytes,
              materialized.circuit.memory_bytes() +
                  circuit::OpArena::kChunkOps * sizeof(circuit::ScheduledOp));
}

TEST(ShardStream, MergedLoweringIsChunkCanonical)
{
    auto device = arch::make_grid(6, 4);
    auto problem = problem::fabric_local_graph(6, 4, 0.6, 2, 31);
    core::CompilerOptions options;
    options.shard_regions = 3;
    std::ostringstream streamed;
    circuit::QasmStreamWriter writer(streamed, {});
    auto result =
        core::shard_compile_stream(device, problem, options, writer);
    // Header + at least one gate per problem edge.
    EXPECT_NE(streamed.str().find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_GE(result.metrics.compute_gates, problem.num_edges());
    EXPECT_EQ(result.regions, 3);
}

TEST(ShardStream, RejectsFullQaoaHeaders)
{
    auto device = arch::make_grid(4, 4);
    auto problem = problem::fabric_local_graph(4, 4, 0.5, 2, 37);
    core::CompilerOptions options;
    options.shard_regions = 2;
    circuit::QasmOptions qasm;
    qasm.full_qaoa = true;
    std::ostringstream out;
    circuit::QasmStreamWriter writer(out, qasm);
    EXPECT_THROW(
        core::shard_compile_stream(device, problem, options, writer),
        FatalError);
}

// ------------------------------------------------------ building blocks

TEST(BfsOracle, MatchesDenseDistanceMatrix)
{
    auto device = arch::make_sycamore(5, 4);
    const auto& g = device.connectivity();
    graph::DistanceMatrix dense(g);
    graph::FlatAdjacency adjacency(g);
    graph::BfsOracle oracle(adjacency);
    for (std::int32_t u = 0; u < g.num_vertices(); ++u) {
        const auto& row = oracle.distances_from(u);
        for (std::int32_t v = 0; v < g.num_vertices(); ++v)
            EXPECT_EQ(row[static_cast<std::size_t>(v)], dense.at(u, v));
    }
    // Early-exit point queries agree too.
    EXPECT_EQ(oracle.distance(0, g.num_vertices() - 1),
              dense.at(0, g.num_vertices() - 1));
    EXPECT_EQ(oracle.distance(3, 3), 0);
}

TEST(BfsOracle, DisconnectedVerticesAreUnreachable)
{
    graph::Graph g(4);
    g.add_edge(0, 1);
    graph::FlatAdjacency adjacency(g);
    graph::BfsOracle oracle(adjacency);
    EXPECT_EQ(oracle.distance(0, 3), kUnreachable);
    EXPECT_EQ(oracle.distance(0, 1), 1);
}

TEST(OpArena, PushIndexIterateAndCopy)
{
    circuit::OpArena arena;
    EXPECT_TRUE(arena.empty());
    const std::size_t count = circuit::OpArena::kChunkOps * 2 + 17;
    for (std::size_t i = 0; i < count; ++i) {
        circuit::ScheduledOp op;
        op.kind = circuit::OpKind::Compute;
        op.p = static_cast<PhysicalQubit>(i % 97);
        op.q = static_cast<PhysicalQubit>(i % 89 + 100);
        op.cycle = static_cast<Cycle>(i);
        arena.push_back(op);
    }
    EXPECT_EQ(arena.size(), count);
    EXPECT_EQ(arena[0].cycle, 0);
    EXPECT_EQ(arena.back().cycle, static_cast<Cycle>(count - 1));
    std::size_t seen = 0;
    for (const auto& op : arena) {
        EXPECT_EQ(op.cycle, static_cast<Cycle>(seen));
        ++seen;
    }
    EXPECT_EQ(seen, count);
    // Copies are deep and element-exact.
    circuit::OpArena copy = arena;
    EXPECT_EQ(copy.size(), arena.size());
    EXPECT_EQ(copy[circuit::OpArena::kChunkOps].cycle,
              arena[circuit::OpArena::kChunkOps].cycle);
    EXPECT_GE(arena.memory_bytes(),
              count * sizeof(circuit::ScheduledOp));
}

TEST(OpArena, ReferencesStableAcrossGrowth)
{
    circuit::OpArena arena;
    circuit::ScheduledOp op;
    op.cycle = 42;
    const circuit::ScheduledOp& first = arena.push_back(op);
    for (std::size_t i = 0; i < circuit::OpArena::kChunkOps * 3; ++i)
        arena.push_back(op);
    EXPECT_EQ(first.cycle, 42) << "push_back must never relocate ops";
}

TEST(Components, OutOfRangeEdgesAreRejected)
{
    std::vector<VertexPair> edges{VertexPair(0, 5)};
    EXPECT_THROW(graph::edge_subset_components(3, edges), FatalError);
    EXPECT_THROW(graph::edge_subset_components(-1, {}), FatalError);
}

TEST(Components, EmptyAndIsolatedInputs)
{
    auto none = graph::edge_subset_components(0, {});
    EXPECT_TRUE(none.members.empty());
    auto isolated = graph::edge_subset_components(4, {});
    EXPECT_TRUE(isolated.members.empty());
    EXPECT_EQ(isolated.component_of,
              (std::vector<std::int32_t>{-1, -1, -1, -1}));
    graph::Graph g(1);
    auto single = graph::connected_components(g, /*skip_isolated=*/false);
    ASSERT_EQ(single.members.size(), 1u);
    EXPECT_EQ(single.members[0], (std::vector<std::int32_t>{0}));
}

TEST(CircuitMemory, MemoryBytesTracksArena)
{
    circuit::Circuit circ(circuit::Mapping(4, 4));
    const std::size_t before = circ.memory_bytes();
    circ.add_compute(0, 1);
    circ.add_swap(1, 2);
    EXPECT_GT(circ.memory_bytes(), before);
    EXPECT_GE(circ.memory_bytes(), circ.ops().memory_bytes());
}

} // namespace
} // namespace permuq
