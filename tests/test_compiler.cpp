/**
 * @file
 * Tests of the hybrid compiler (paper §5/§6): validity on every
 * architecture, the Theorem 6.1 never-worse-than-ATA guarantee, noise
 * and crosstalk handling, determinism, and the selector cost.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "baselines/baselines.h"
#include "circuit/metrics.h"
#include "common/log/log.h"
#include "common/telemetry/telemetry.h"
#include "core/compiler.h"
#include "core/crosstalk.h"
#include "core/placement.h"
#include "core/prediction.h"
#include "problem/generators.h"
#include "problem/hamiltonians.h"

namespace permuq::core {
namespace {

struct CompileCase
{
    arch::ArchKind kind;
    std::int32_t n;
    double density;
};

class CompileTest : public ::testing::TestWithParam<CompileCase>
{
};

TEST_P(CompileTest, ProducesValidCircuit)
{
    auto c = GetParam();
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, 17);
    auto result = compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_GT(result.metrics.depth, 0);
    EXPECT_EQ(result.metrics.compute_gates, problem.num_edges());
}

TEST_P(CompileTest, NeverWorseThanPureAta)
{
    // Theorem 6.1: the selector output costs at most as much as cc0
    // (the pure solver-guided solution) under the cost function F. The
    // guarantee is exact against the compiler's own cc0 candidate; the
    // ata_only baseline used as a proxy here differs in two benign
    // ways (identity placement, dead swaps kept), so allow 2% slack.
    auto c = GetParam();
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, 29);
    CompilerOptions options;
    // The theorem is about the full hybrid (the selector always holds
    // the cc0 candidate); the fast tier never materializes cc0, so the
    // bound must not shift under PERMUQ_TIER.
    options.tier = CompileTier::Best;
    auto ours = compile(device, problem, options);
    auto ata = baselines::ata_only(device, problem);
    double ours_cost = selector_cost(ours.metrics, ours.metrics, nullptr,
                                     options.alpha);
    double ata_cost = selector_cost(ata.metrics, ours.metrics, nullptr,
                                    options.alpha);
    EXPECT_LE(ours_cost, ata_cost * 1.02 + 1e-9);
}

TEST_P(CompileTest, LinearDepthBound)
{
    auto c = GetParam();
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, 31);
    auto result = compile(device, problem);
    // Worst-case linear-depth guarantee (generous constant).
    EXPECT_LE(result.metrics.depth, 10 * device.num_qubits() + 64);
}

TEST_P(CompileTest, Deterministic)
{
    auto c = GetParam();
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, 37);
    auto a = compile(device, problem);
    auto b = compile(device, problem);
    EXPECT_EQ(a.metrics.depth, b.metrics.depth);
    EXPECT_EQ(a.metrics.cx_count, b.metrics.cx_count);
    EXPECT_EQ(a.circuit.ops().size(), b.circuit.ops().size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompileTest,
    ::testing::Values(CompileCase{arch::ArchKind::HeavyHex, 32, 0.3},
                      CompileCase{arch::ArchKind::HeavyHex, 64, 0.1},
                      CompileCase{arch::ArchKind::HeavyHex, 64, 0.5},
                      CompileCase{arch::ArchKind::Sycamore, 32, 0.3},
                      CompileCase{arch::ArchKind::Sycamore, 64, 0.5},
                      CompileCase{arch::ArchKind::Grid, 36, 0.3},
                      CompileCase{arch::ArchKind::Grid, 64, 0.7},
                      CompileCase{arch::ArchKind::Hexagon, 36, 0.3},
                      CompileCase{arch::ArchKind::Line, 16, 0.4}));

TEST(CompileTest, ReportAttributesPhasesPrefixTailAndCaches)
{
    auto device = arch::smallest_arch(arch::ArchKind::Sycamore, 32);
    auto problem = problem::random_graph(32, 0.3, 17);
    // Pin the tier: this test asserts balanced-path attribution
    // (schedule caches, greedy timing), which PERMUQ_TIER=fast would
    // route around. The fast tier has its own report test below.
    CompilerOptions options;
    options.tier = CompileTier::Best;
    auto result = compile(device, problem, options);
    const CompileReport& rep = result.report;

    EXPECT_FALSE(rep.tier_requested.empty());
    EXPECT_FALSE(rep.tier_served.empty());
    EXPECT_EQ(rep.selected, result.selected);
    EXPECT_EQ(rep.problem_qubits, problem.num_vertices());
    EXPECT_EQ(rep.problem_edges, problem.num_edges());
    EXPECT_EQ(rep.device_qubits, device.num_qubits());
    EXPECT_GT(rep.trials, 0);
    EXPECT_GT(rep.total_seconds, 0.0);
    EXPECT_GT(rep.greedy_seconds, 0.0);

    // Prefix + tail partition the op stream and its metrics exactly.
    const auto total_ops =
        static_cast<std::int64_t>(result.circuit.ops().size());
    EXPECT_EQ(rep.prefix_swaps + rep.prefix_computes, rep.prefix_ops);
    EXPECT_EQ(rep.prefix_ops + rep.tail_swaps + rep.tail_computes,
              total_ops);
    EXPECT_EQ(rep.prefix_swaps + rep.tail_swaps,
              result.metrics.swap_gates);
    EXPECT_EQ(rep.prefix_computes + rep.tail_computes,
              result.metrics.compute_gates);
    EXPECT_EQ(rep.prefix_depth + rep.tail_depth, result.metrics.depth);
    // The per-round rows account for the whole tail (when present).
    std::int64_t round_swaps = 0, round_computes = 0;
    for (const auto& round : rep.rounds) {
        round_swaps += round.swaps;
        round_computes += round.computes;
    }
    if (rep.ata_rounds ==
        static_cast<std::int64_t>(rep.rounds.size())) {
        EXPECT_EQ(round_swaps, rep.tail_swaps);
        EXPECT_EQ(round_computes, rep.tail_computes);
    }

    // A 32-qubit hybrid compile exercises the schedule cache.
    EXPECT_GT(rep.schedule_cache_hits + rep.schedule_cache_misses, 0);
    EXPECT_GT(rep.pull_cache_hits + rep.pull_cache_misses, 0);

    EXPECT_EQ(rep.depth, result.metrics.depth);
    EXPECT_EQ(rep.cx_count, result.metrics.cx_count);
    EXPECT_EQ(rep.swap_count, result.metrics.swap_gates);

    const std::string json = rep.to_json();
    EXPECT_NE(json.find("\"permuq_report\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"caches\""), std::string::npos);
}

TEST(CompileTest, FastTierReportCoversPrefixAndTail)
{
    auto device = arch::smallest_arch(arch::ArchKind::Grid, 36);
    auto problem = problem::random_graph(36, 0.4, 23);
    CompilerOptions options;
    options.tier = CompileTier::Fast;
    auto result = compile(device, problem, options);
    const CompileReport& rep = result.report;
    EXPECT_EQ(rep.tier_served, "fast");
    EXPECT_EQ(rep.prefix_ops + rep.tail_swaps + rep.tail_computes,
              static_cast<std::int64_t>(result.circuit.ops().size()));
    EXPECT_EQ(rep.prefix_depth + rep.tail_depth, result.metrics.depth);
    EXPECT_GT(rep.total_seconds, 0.0);
}

TEST(CompileTest, OutputBitIdenticalWithObservabilityEnabled)
{
    // The acceptance bar for the observability layer: debug logging
    // and telemetry recording must not perturb compilation.
    auto device = arch::smallest_arch(arch::ArchKind::Sycamore, 32);
    auto problem = problem::random_graph(32, 0.5, 29);
    auto quiet = compile(device, problem);

    const logging::Level level_before = logging::level();
    logging::set_level(logging::Level::Debug);
    const std::string sink = ::testing::TempDir() +
                             "permuq_obs_identity.log";
    logging::set_sink_file(sink);
    telemetry::set_enabled(true);
    auto loud = compile(device, problem);
    telemetry::set_enabled(false);
    telemetry::Registry::instance().reset();
    logging::flush();
    logging::set_sink_stderr();
    logging::set_level(level_before);
    std::remove(sink.c_str());

    const auto& a = quiet.circuit.ops();
    const auto& b = loud.circuit.ops();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].p, b[i].p);
        EXPECT_EQ(a[i].q, b[i].q);
        EXPECT_EQ(a[i].cycle, b[i].cycle);
    }
    EXPECT_EQ(quiet.metrics.depth, loud.metrics.depth);
}

TEST(CompileTest, CliqueSelectsStructuredSolution)
{
    // On a clique input the rigid ATA pattern is near-optimal; the
    // selector must not return something drastically worse.
    auto device = arch::make_grid(5, 5);
    auto problem = graph::Graph::clique(25);
    auto ours = compile(device, problem);
    auto ata = baselines::ata_only(device, problem);
    circuit::expect_valid(ours.circuit, device, problem);
    EXPECT_LE(ours.metrics.depth, ata.metrics.depth * 3 / 2 + 4);
}

TEST(CompileTest, EmptyProblem)
{
    auto device = arch::make_grid(3, 3);
    graph::Graph problem(9);
    auto result = compile(device, problem);
    EXPECT_EQ(result.metrics.depth, 0);
    EXPECT_EQ(result.metrics.cx_count, 0);
}

TEST(CompileTest, SingleGate)
{
    auto device = arch::make_grid(3, 3);
    graph::Graph problem(9);
    problem.add_edge(0, 8);
    auto result = compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_GE(result.metrics.compute_gates, 1);
}

TEST(CompileTest, ProblemSmallerThanDevice)
{
    auto device = arch::make_sycamore(6, 6);
    auto problem = problem::random_graph(10, 0.4, 3);
    auto result = compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(CompileTest, NoiseAwareStillValidAndPrefersGoodLinks)
{
    // Direct mechanism test (robust to route-length confounds): under
    // a high-contrast calibration, the error-weighted SWAP selection
    // must steer swaps toward lower-error links on average, without
    // inflating the gate count much.
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 32);
    auto noise =
        arch::NoiseModel::calibrated(device, 8, 1e-2, 2e-2, 1.2);
    auto mean_swap_link_error = [&](const circuit::Circuit& circ) {
        double sum = 0.0;
        std::int64_t swaps = 0;
        for (const auto& op : circ.ops()) {
            if (op.kind != circuit::OpKind::Swap)
                continue;
            sum += noise.cx_error(op.p, op.q);
            ++swaps;
        }
        return sum / std::max<std::int64_t>(1, swaps);
    };
    double err_aware = 0.0, err_blind = 0.0;
    double cx_aware = 0.0, cx_blind = 0.0;
    for (std::uint64_t seed = 11; seed < 19; ++seed) {
        auto problem = problem::random_graph(32, 0.3, seed);
        CompilerOptions options;
        options.noise = &noise;
        auto noisy = compile(device, problem, options);
        circuit::expect_valid(noisy.circuit, device, problem);
        auto plain = compile(device, problem);
        err_aware += mean_swap_link_error(noisy.circuit);
        err_blind += mean_swap_link_error(plain.circuit);
        cx_aware += static_cast<double>(
            circuit::compute_metrics(noisy.circuit).cx_count);
        cx_blind += static_cast<double>(
            circuit::compute_metrics(plain.circuit).cx_count);
    }
    EXPECT_LT(err_aware, err_blind);
    EXPECT_LT(cx_aware, cx_blind * 1.10);
}

TEST(CompileTest, CrosstalkAwareAvoidsParallelAdjacentGates)
{
    auto device = arch::make_grid(4, 4);
    auto problem = problem::random_graph(16, 0.5, 13);
    CompilerOptions options;
    options.crosstalk_aware = true;
    auto result = compile(device, problem, options);
    circuit::expect_valid(result.circuit, device, problem);

    // No two compute gates in the same cycle on crosstalking couplers.
    CrosstalkMap map(device);
    std::vector<const circuit::ScheduledOp*> computes;
    for (const auto& op : result.circuit.ops())
        if (op.kind == circuit::OpKind::Compute)
            computes.push_back(&op);
    std::unordered_map<VertexPair, std::int32_t, VertexPairHash> index;
    const auto& couplers = device.couplers();
    for (std::int32_t i = 0;
         i < static_cast<std::int32_t>(couplers.size()); ++i)
        index.emplace(couplers[static_cast<std::size_t>(i)], i);
    std::int64_t violations = 0;
    for (std::size_t i = 0; i < computes.size(); ++i) {
        for (std::size_t j = i + 1; j < computes.size(); ++j) {
            if (computes[i]->cycle != computes[j]->cycle)
                continue;
            std::int32_t ci = index.at(
                VertexPair(computes[i]->p, computes[i]->q));
            std::int32_t cj = index.at(
                VertexPair(computes[j]->p, computes[j]->q));
            const auto& nbrs = map.neighbors(ci);
            if (std::find(nbrs.begin(), nbrs.end(), cj) != nbrs.end())
                ++violations;
        }
    }
    // The greedy stage enforces this for the gates it schedules; the
    // ASAP re-packing and ATA tails may reintroduce a few overlaps, so
    // require a large reduction rather than zero.
    CompilerOptions off;
    off.crosstalk_aware = false;
    // (Just assert the aware run has bounded violations.)
    EXPECT_LE(violations,
              static_cast<std::int64_t>(computes.size()) / 4 + 2);
}

TEST(CompileTest, CustomArchitectureFallsBackToGreedy)
{
    // An irregular device (paper 6.5): a random connected coupling
    // graph with no unit decomposition. The compiler must fall back to
    // pure greedy and still produce a valid circuit.
    std::vector<VertexPair> couplers;
    // A ring with chords.
    for (std::int32_t i = 0; i < 12; ++i)
        couplers.emplace_back(i, (i + 1) % 12);
    couplers.emplace_back(0, 6);
    couplers.emplace_back(3, 9);
    couplers.emplace_back(2, 7);
    auto device = arch::make_custom(12, couplers, "ring-with-chords");
    auto problem = problem::random_graph(12, 0.4, 43);
    auto result = compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_EQ(result.selected, "greedy");
}

TEST(CompileTest, CustomArchitectureStallFallbackTerminates)
{
    // A barely-connected custom device (a star) forces heavy routing
    // through the hub; compilation must still terminate and validate.
    std::vector<VertexPair> couplers;
    for (std::int32_t i = 1; i < 10; ++i)
        couplers.emplace_back(0, i);
    auto device = arch::make_custom(10, couplers, "star");
    auto problem = problem::random_graph(10, 0.5, 47);
    auto result = compile(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(SelectorCostTest, Behaviour)
{
    circuit::Metrics ref;
    ref.depth = 100;
    ref.cx_count = 1000;
    circuit::Metrics half = ref;
    half.depth = 50;
    half.cx_count = 500;
    EXPECT_NEAR(selector_cost(ref, ref, nullptr, 0.5), 1.0, 1e-12);
    EXPECT_NEAR(selector_cost(half, ref, nullptr, 0.5), 0.5, 1e-12);
    // Alpha weighs depth vs gates.
    circuit::Metrics deep = ref;
    deep.depth = 200;
    EXPECT_NEAR(selector_cost(deep, ref, nullptr, 1.0), 2.0, 1e-12);
    EXPECT_NEAR(selector_cost(deep, ref, nullptr, 0.0), 1.0, 1e-12);
}

TEST(PredictionTest, RegionsShrinkWithProgress)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::random_graph(64, 0.2, 41);
    circuit::Mapping mapping(64, 64);
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    auto full_plan = detect_regions(device, problem, done, mapping);
    // Execute most edges: keep only gates among logicals 0..7.
    for (std::int32_t e = 0; e < problem.num_edges(); ++e) {
        const auto& edge = problem.edges()[static_cast<std::size_t>(e)];
        if (edge.a >= 8 || edge.b >= 8)
            done[static_cast<std::size_t>(e)] = true;
    }
    auto small_plan = detect_regions(device, problem, done, mapping);
    EXPECT_LE(small_plan.max_positions, full_plan.max_positions);
    EXPECT_LT(estimate_tail_depth(device, small_plan),
              estimate_tail_depth(device, full_plan) + 1e-9);
}

TEST(PredictionTest, EmptyRemainderYieldsEmptyPlan)
{
    auto device = arch::make_grid(3, 3);
    auto problem = problem::random_graph(9, 0.3, 2);
    circuit::Mapping mapping(9, 9);
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           true);
    auto plan = detect_regions(device, problem, done, mapping);
    EXPECT_TRUE(plan.regions.empty());
    EXPECT_EQ(tail_schedule(device, plan).num_slots(), 0);
}

TEST(PlacementTest, ConnectivityStrengthIsInjective)
{
    auto device = arch::make_heavy_hex(3, 7);
    auto problem = problem::random_graph(20, 0.4, 19);
    auto mapping = connectivity_strength_placement(device, problem);
    std::vector<bool> seen(
        static_cast<std::size_t>(device.num_qubits()), false);
    for (std::int32_t l = 0; l < 20; ++l) {
        PhysicalQubit p = mapping.physical_of(l);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
        seen[static_cast<std::size_t>(p)] = true;
    }
}

TEST(PlacementTest, ReducesTotalDistanceVsIdentity)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::random_graph(30, 0.2, 23);
    auto smart = connectivity_strength_placement(device, problem);
    circuit::Mapping identity(30, 64);
    auto total = [&](const circuit::Mapping& m) {
        std::int64_t sum = 0;
        for (const auto& e : problem.edges())
            sum += device.distance(m.physical_of(e.a),
                                   m.physical_of(e.b));
        return sum;
    };
    EXPECT_LT(total(smart), total(identity));
}

TEST(CrosstalkTest, GridPairsAreParallelAdjacent)
{
    auto device = arch::make_grid(3, 3);
    CrosstalkMap map(device);
    // On a grid every interior coupler has parallel neighbors.
    EXPECT_GT(map.total_pairs(), 0);
    const auto& couplers = device.couplers();
    for (std::int32_t c = 0;
         c < static_cast<std::int32_t>(couplers.size()); ++c) {
        for (std::int32_t other : map.neighbors(c)) {
            const auto& e1 = couplers[static_cast<std::size_t>(c)];
            const auto& e2 = couplers[static_cast<std::size_t>(other)];
            // Disjoint endpoints.
            EXPECT_NE(e1.a, e2.a);
            EXPECT_NE(e1.b, e2.b);
            EXPECT_NE(e1.a, e2.b);
            EXPECT_NE(e1.b, e2.a);
        }
    }
}

TEST(HamiltonianCompileTest, AllThreeModelsCompileValid)
{
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 64);
    for (const auto& problem :
         {problem::nnn_ising_1d(64), problem::nnn_xy_2d(8, 8),
          problem::nnn_heisenberg_3d(4, 4, 4)}) {
        auto result = compile(device, problem);
        circuit::expect_valid(result.circuit, device, problem);
    }
}

} // namespace
} // namespace permuq::core
