/**
 * @file
 * Tests of the schedule verifier and the greedy completion safety net
 * (ata/verify.h): the machinery that keeps every pattern generator
 * honest.
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "ata/line_pattern.h"
#include "ata/verify.h"

namespace permuq::ata {
namespace {

TEST(VerifyTest, EmptyScheduleMissesEverything)
{
    auto device = arch::make_line(4);
    SwapSchedule empty;
    auto report = verify_coverage(device, empty);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.missing.size(), 6u); // C(4,2)
}

TEST(VerifyTest, DetectsNonCouplerSlot)
{
    auto device = arch::make_line(4);
    SwapSchedule sched;
    sched.compute(0, 2); // not coupled
    auto report = verify_coverage(device, sched);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("non-coupler"), std::string::npos);
}

TEST(VerifyTest, DetectsSlotOutsideRegion)
{
    auto device = arch::make_line(6);
    SwapSchedule sched;
    sched.compute(3, 4); // outside the selected positions
    auto report = verify_coverage(device, sched, {0, 1, 2});
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("outside"), std::string::npos);
}

TEST(VerifyTest, TracksOccupantsThroughSwaps)
{
    // compute(0,1); swap(1,2); compute(1,2) meets pairs {0,1} then
    // {1,2} (occupant 1 moved to position 2); {0,2} never meet.
    auto device = arch::make_line(3);
    SwapSchedule sched;
    sched.compute(0, 1);
    sched.swap(1, 2);
    sched.compute(1, 2);
    auto report = verify_coverage(device, sched);
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.missing.size(), 1u);
    EXPECT_EQ(report.missing[0], VertexPair(0, 2));
}

TEST(VerifyTest, CountsDuplicateMeets)
{
    auto device = arch::make_line(2);
    SwapSchedule sched;
    sched.compute(0, 1);
    sched.compute(0, 1);
    auto report = verify_coverage(device, sched);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.duplicate_meets, 1);
}

TEST(VerifyTest, BipartiteIgnoresIntraSidePairs)
{
    auto device = arch::make_grid(2, 2);
    SwapSchedule sched;
    sched.compute(0, 2); // vertical links: (0,2) and (1,3)
    sched.compute(1, 3);
    sched.swap(0, 1); // rotate the top row
    sched.compute(0, 2);
    sched.compute(1, 3);
    auto report =
        verify_bipartite_coverage(device, sched, {0, 1}, {2, 3});
    EXPECT_TRUE(report.ok) << report.missing.size();
}

TEST(CompletionTest, CompletesAnEmptySchedule)
{
    auto device = arch::make_grid(3, 3);
    SwapSchedule sched;
    auto added = complete_missing_pairs(device, sched);
    EXPECT_EQ(added, 9 * 8 / 2);
    auto report = verify_coverage(device, sched);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(CompletionTest, CompletesAPartialPattern)
{
    // Take a line pattern and drop its tail; completion must repair it.
    auto device = arch::make_line(6);
    std::vector<PhysicalQubit> path = {0, 1, 2, 3, 4, 5};
    auto sched = line_pattern(path);
    sched.slots.resize(sched.slots.size() / 2);
    EXPECT_FALSE(verify_coverage(device, sched).ok);
    auto added = complete_missing_pairs(device, sched);
    EXPECT_GT(added, 0);
    EXPECT_TRUE(verify_coverage(device, sched).ok);
}

TEST(CompletionTest, RespectsRegionRestriction)
{
    auto device = arch::make_grid(3, 3);
    std::vector<PhysicalQubit> region = {0, 1, 3, 4};
    SwapSchedule sched;
    complete_missing_pairs(device, sched, region);
    auto report = verify_coverage(device, sched, region);
    EXPECT_TRUE(report.ok) << report.error;
    // No slot may leave the region.
    for (const auto& slot : sched.slots) {
        EXPECT_TRUE(std::find(region.begin(), region.end(), slot.p) !=
                    region.end());
        EXPECT_TRUE(std::find(region.begin(), region.end(), slot.q) !=
                    region.end());
    }
}

TEST(CompletionTest, NoopOnCompleteSchedule)
{
    auto device = arch::make_line(5);
    auto sched = line_pattern({0, 1, 2, 3, 4});
    auto before = sched.num_slots();
    auto added = complete_missing_pairs(device, sched);
    EXPECT_EQ(added, 0);
    EXPECT_EQ(sched.num_slots(), before);
}

} // namespace
} // namespace permuq::ata
