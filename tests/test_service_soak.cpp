/**
 * @file
 * Service soak: N client threads firing M mixed (repeat + unique,
 * mixed-tier) pipelined compile requests at an in-process Server.
 * Asserts the service contract end to end:
 *
 *   - every response carries the id of a request this thread sent,
 *     and every request is answered exactly once;
 *   - every response fragment — cached or fresh — is byte-identical
 *     to the plan the core compiler produces for that spec (so warm
 *     responses are byte-identical to cold ones, transitively);
 *   - the plan cache actually absorbs the repeats (hits > 0, and
 *     cached=true responses occur);
 *   - bounded admission control rejects excess work with typed
 *     `overloaded` errors while still answering accepted work;
 *   - a shutdown request flips shutdown_requested() and stop() joins
 *     everything cleanly.
 *
 * The whole file must stay green under TSan — it is wired into the
 * sanitizer CI job precisely to race readers, workers, and the cache.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "common/telemetry/telemetry.h"
#include "circuit/qasm.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "service/client.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/server.h"

namespace permuq::service {
namespace {

/** One distinct compile workload in the soak mix. */
struct Spec
{
    std::int32_t n;
    double density;
    std::uint64_t seed;
    std::string tier;
};

Request
spec_request(const Spec& spec, std::int64_t id)
{
    Request request;
    request.id = id;
    request.arch = "heavyhex";
    request.problem_n = spec.n;
    request.random_n = spec.n;
    request.density = spec.density;
    request.seed = spec.seed;
    request.tier = spec.tier;
    return request;
}

/** The deterministic parts of a compiled plan (the CompileReport
 *  also rides in the fragment, but it carries wall-clock phase
 *  timings, so it is only byte-stable cold-to-warm, not
 *  compile-to-compile). */
struct ExpectedPlan
{
    std::string qasm;
    PlanSummary plan;
};

/**
 * What a fresh one-shot compile of @p spec yields — the same path
 * permuqc takes (random problem, smallest heavy-hex device,
 * core::compile, to_qasm). Every service response for the spec must
 * serve this QASM byte for byte and this plan summary.
 */
ExpectedPlan
fresh_plan(const Spec& spec)
{
    const graph::Graph problem =
        problem::random_graph(spec.n, spec.density, spec.seed);
    const arch::CouplingGraph device =
        arch::smallest_arch(arch::ArchKind::HeavyHex,
                            problem.num_vertices());

    core::CompilerOptions options;
    EXPECT_TRUE(core::parse_tier(spec.tier, options.tier));
    auto result = core::compile(device, problem, options);
    const auto metrics = circuit::compute_metrics(result.circuit);

    ExpectedPlan expected;
    expected.qasm = circuit::to_qasm(result.circuit);
    expected.plan.tier = result.tier;
    expected.plan.selected = result.selected;
    expected.plan.depth = metrics.depth;
    expected.plan.cx = metrics.cx_count;
    expected.plan.swaps = metrics.swap_gates;
    return expected;
}

TEST(ServiceSoak, PipelinedMixedLoadIsOrderedCachedAndByteIdentical)
{
    ServerOptions options;
    options.port = 0;
    options.workers = 4;
    options.queue_depth = 256; // no overloads in this test
    options.max_inflight = 64;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Small pool of distinct specs across tiers; every thread walks
    // the pool several times, so most requests are repeats.
    const std::vector<Spec> specs = {
        {10, 0.40, 1, "fast"},     {12, 0.30, 2, "fast"},
        {14, 0.25, 3, "balanced"}, {10, 0.40, 1, "balanced"},
        {16, 0.20, 4, "fast"},     {12, 0.35, 5, "balanced"},
    };
    constexpr int kThreads = 6;
    constexpr int kRequestsPerThread = 18;
    constexpr int kBatch = 3; // pipelining depth per client

    // Expected plans, compiled directly (no server involved).
    std::vector<ExpectedPlan> expected;
    for (const Spec& spec : specs)
        expected.push_back(fresh_plan(spec));

    std::mutex failures_mutex;
    std::vector<std::string> failures;
    std::atomic<int> cached_responses{0};
    auto fail = [&](const std::string& what) {
        std::lock_guard<std::mutex> lock(failures_mutex);
        failures.push_back(what);
    };
    // Per-spec fragments as served, split cold/cached, for the
    // byte-identity check after the load completes.
    std::mutex fragments_mutex;
    std::vector<std::vector<std::string>> cold_fragments(specs.size());
    std::vector<std::vector<std::string>> warm_fragments(specs.size());

    auto client_thread = [&](int thread_index) {
        Client client;
        std::string err;
        if (!client.connect(server.port(), err)) {
            fail("connect: " + err);
            return;
        }
        int sent = 0;
        std::map<std::int64_t, std::size_t> inflight; // id -> spec
        while (sent < kRequestsPerThread) {
            const int batch =
                std::min(kBatch, kRequestsPerThread - sent);
            for (int b = 0; b < batch; ++b, ++sent) {
                // Unique id per request across all threads.
                const std::int64_t id =
                    1000 * (thread_index + 1) + sent;
                const std::size_t spec_index =
                    static_cast<std::size_t>(
                        (thread_index + sent * 5) %
                        static_cast<int>(specs.size()));
                if (!client.send(
                        spec_request(specs[spec_index], id), err)) {
                    fail("send: " + err);
                    return;
                }
                inflight.emplace(id, spec_index);
            }
            // Drain the batch; ids may come back in any order.
            while (!inflight.empty()) {
                Response response;
                if (!client.receive(response, err)) {
                    fail("receive: " + err);
                    return;
                }
                const auto it = inflight.find(response.id);
                if (it == inflight.end()) {
                    fail("unexpected response id " +
                         std::to_string(response.id));
                    return;
                }
                if (response.type != "result") {
                    fail("id " + std::to_string(response.id) +
                         ": type=" + response.type + " error=" +
                         to_string(response.error) + " " +
                         response.message);
                } else {
                    const ExpectedPlan& want = expected[it->second];
                    if (response.qasm != want.qasm)
                        fail("id " + std::to_string(response.id) +
                             ": QASM differs from a fresh compile");
                    if (response.plan.tier != want.plan.tier ||
                        response.plan.selected !=
                            want.plan.selected ||
                        response.plan.depth != want.plan.depth ||
                        response.plan.cx != want.plan.cx ||
                        response.plan.swaps != want.plan.swaps)
                        fail("id " + std::to_string(response.id) +
                             ": plan summary differs from a fresh "
                             "compile");
                    std::lock_guard<std::mutex> lock(fragments_mutex);
                    (response.cached ? warm_fragments
                                     : cold_fragments)[it->second]
                        .push_back(response.fragment);
                }
                if (response.cached)
                    cached_responses.fetch_add(1);
                inflight.erase(it);
            }
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(client_thread, t);
    for (auto& thread : threads)
        thread.join();

    for (const std::string& what : failures)
        ADD_FAILURE() << what;
    EXPECT_TRUE(failures.empty());

    // Byte-identity of the warm path: every cached response replays
    // — byte for byte — a fragment that was served cold (the report
    // section carries phase timings, so it is only byte-stable
    // through the cache, never across independent compiles).
    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (const std::string& warm : warm_fragments[s]) {
            bool matched = false;
            for (const std::string& cold : cold_fragments[s])
                if (warm == cold) {
                    matched = true;
                    break;
                }
            EXPECT_TRUE(matched)
                << "spec " << s
                << ": cached fragment is not byte-identical to any "
                   "cold response";
        }
        EXPECT_FALSE(warm_fragments[s].empty())
            << "spec " << s << " was never served from the cache";
    }

    // 108 requests over 6 distinct plans: the cache must have served
    // most of them, and warm responses were proven byte-identical to
    // the directly-compiled plan above.
    EXPECT_GT(server.cache().hits(), 0);
    EXPECT_GT(cached_responses.load(), 0);
    EXPECT_EQ(server.cache().entries(), specs.size());
    EXPECT_LE(server.cache().misses(),
              static_cast<std::int64_t>(kThreads * specs.size()));

    server.stop();
}

TEST(ServiceSoak, BoundedQueueRejectsWithTypedOverloaded)
{
    ServerOptions options;
    options.port = 0;
    options.workers = 1;
    options.queue_depth = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(server.port(), error)) << error;

    // Four pipelined slow requests against one worker and a depth-1
    // queue: the first occupies the worker, at most one more waits,
    // the rest bounce with a typed `overloaded` error. Exact counts
    // depend on dequeue timing, but the contract is fixed: every id
    // is answered exactly once, at least one succeeds, at least one
    // is rejected, and nothing else comes back.
    constexpr int kRequests = 4;
    Spec spec{10, 0.4, 7, "fast"};
    for (int i = 0; i < kRequests; ++i) {
        Request request = spec_request(spec, 100 + i);
        request.seed = static_cast<std::uint64_t>(100 + i);
        request.debug_sleep_ms = 300;
        ASSERT_TRUE(client.send(request, error)) << error;
    }

    std::set<std::int64_t> answered;
    int results = 0;
    int overloaded = 0;
    for (int i = 0; i < kRequests; ++i) {
        Response response;
        ASSERT_TRUE(client.receive(response, error)) << error;
        EXPECT_TRUE(answered.insert(response.id).second)
            << "id " << response.id << " answered twice";
        if (response.type == "result") {
            ++results;
        } else {
            ASSERT_EQ(response.type, "error");
            EXPECT_EQ(response.error, ErrorKind::Overloaded);
            ++overloaded;
        }
    }
    EXPECT_EQ(static_cast<int>(answered.size()), kRequests);
    EXPECT_GE(results, 1);
    EXPECT_GE(overloaded, 1);
    EXPECT_EQ(results + overloaded, kRequests);

    server.stop();
}

TEST(ServiceSoak, PingMetricsAndShutdownRoundTrip)
{
    // permuqd runs with telemetry on; mirror that so the counters in
    // the metrics payload actually move.
    telemetry::set_enabled(true);
    ServerOptions options;
    options.port = 0;
    options.workers = 1;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(server.port(), error)) << error;

    Request ping;
    ping.id = 1;
    ping.type = "ping";
    Response response;
    ASSERT_TRUE(client.call(ping, response, error)) << error;
    EXPECT_EQ(response.type, "pong");

    // One compile so the metrics payload has request counters.
    ASSERT_TRUE(
        client.call(spec_request({10, 0.4, 1, "fast"}, 2), response,
                    error))
        << error;
    EXPECT_EQ(response.type, "result");

    Request metrics;
    metrics.id = 3;
    metrics.type = "metrics";
    ASSERT_TRUE(client.call(metrics, response, error)) << error;
    EXPECT_EQ(response.type, "metrics");
    EXPECT_NE(response.prometheus.find("permuq_service_requests"),
              std::string::npos)
        << response.prometheus;

    EXPECT_FALSE(server.shutdown_requested());
    Request shutdown;
    shutdown.id = 4;
    shutdown.type = "shutdown";
    ASSERT_TRUE(client.call(shutdown, response, error)) << error;
    EXPECT_EQ(response.type, "ok");
    EXPECT_TRUE(server.shutdown_requested());

    server.stop();
    // After stop() the connection is severed: the next receive sees a
    // clean close, not a hang.
    EXPECT_FALSE(client.receive(response, error));
    telemetry::set_enabled(false);
}

} // namespace
} // namespace permuq::service
