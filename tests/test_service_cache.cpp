/**
 * @file
 * PlanCache determinism: hit/miss behavior, key sensitivity (any
 * single differing option/arch/problem bit is a different key), and
 * LRU eviction under the byte budget using the exact-footprint
 * entry_bytes() accounting — eviction points are computed, not
 * observed.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "service/plan_cache.h"
#include "service/protocol.h"

namespace permuq::service {
namespace {

std::shared_ptr<const std::string>
payload(std::size_t bytes)
{
    return std::make_shared<const std::string>(bytes, 'q');
}

TEST(PlanCache, HitAfterInsertMissBefore)
{
    PlanCache cache(1 << 20);
    EXPECT_EQ(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.misses(), 1);
    cache.insert("k", payload(100));
    const auto hit = cache.lookup("k");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 100u);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), PlanCache::entry_bytes("k", *hit));
}

TEST(PlanCache, AnySingleRequestBitChangesTheKey)
{
    Request base;
    base.arch = "heavyhex";
    base.problem_n = 32;
    base.density = 0.3;
    base.seed = 1;
    base.alpha = 0.5;
    const std::string key = PlanCache::make_key(base, "best");

    auto differs = [&](auto mutate) {
        Request changed = base;
        mutate(changed);
        return PlanCache::make_key(changed, "best") != key;
    };
    EXPECT_TRUE(differs([](Request& r) { r.arch = "sycamore"; }));
    EXPECT_TRUE(differs([](Request& r) { r.problem_n = 33; }));
    EXPECT_TRUE(differs([](Request& r) { r.density = 0.31; }));
    EXPECT_TRUE(differs([](Request& r) { r.seed = 2; }));
    EXPECT_TRUE(differs([](Request& r) { r.alpha = 0.51; }));
    EXPECT_TRUE(differs([](Request& r) { r.crosstalk = true; }));
    EXPECT_TRUE(differs([](Request& r) { r.shard = 4; }));
    EXPECT_TRUE(differs([](Request& r) { r.shard_margin = 1; }));
    EXPECT_TRUE(differs([](Request& r) { r.full_qaoa = true; }));
    // Resolved tier is part of the key.
    EXPECT_NE(PlanCache::make_key(base, "fast"), key);
    // The request id is NOT part of the key (same plan, new id).
    Request same = base;
    same.id = 999;
    EXPECT_EQ(PlanCache::make_key(same, "best"), key);

    // Explicit edges: the exact edge set is the key — one endpoint
    // moved is a different problem.
    Request edged = base;
    edged.has_edges = true;
    edged.edges = {{0, 1}, {1, 2}};
    const std::string edge_key = PlanCache::make_key(edged, "best");
    EXPECT_NE(edge_key, key);
    Request moved = edged;
    moved.edges[1] = {1, 3};
    EXPECT_NE(PlanCache::make_key(moved, "best"), edge_key);
}

TEST(PlanCache, LruEvictionRespectsTheByteBudgetExactly)
{
    // Three equal entries fit; the fourth insertion must evict
    // exactly the least-recently-used one. Budget is computed from
    // entry_bytes so the test pins the accounting convention, not an
    // implementation accident.
    const std::string k1 = "key-1", k2 = "key-2", k3 = "key-3",
                      k4 = "key-4";
    auto p = payload(1000);
    const std::size_t each = PlanCache::entry_bytes(k1, *p);
    PlanCache cache(3 * each);

    cache.insert(k1, p);
    cache.insert(k2, p);
    cache.insert(k3, p);
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.bytes(), 3 * each);
    EXPECT_EQ(cache.evictions(), 0);

    cache.insert(k4, p);
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.bytes(), 3 * each);
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_EQ(cache.lookup(k1), nullptr); // the LRU victim
    EXPECT_NE(cache.lookup(k2), nullptr);
    EXPECT_NE(cache.lookup(k3), nullptr);
    EXPECT_NE(cache.lookup(k4), nullptr);
}

TEST(PlanCache, LookupPromotesAgainstEviction)
{
    auto p = payload(1000);
    const std::size_t each = PlanCache::entry_bytes("key-1", *p);
    PlanCache cache(3 * each);
    cache.insert("key-1", p);
    cache.insert("key-2", p);
    cache.insert("key-3", p);
    // Touch key-1: key-2 becomes the LRU victim.
    ASSERT_NE(cache.lookup("key-1"), nullptr);
    cache.insert("key-4", p);
    EXPECT_NE(cache.lookup("key-1"), nullptr);
    EXPECT_EQ(cache.lookup("key-2"), nullptr);
    EXPECT_NE(cache.lookup("key-3"), nullptr);
    EXPECT_NE(cache.lookup("key-4"), nullptr);
}

TEST(PlanCache, OversizedEntryIsNotCachedAndReplaceAccountsBytes)
{
    auto small = payload(100);
    const std::size_t budget =
        PlanCache::entry_bytes("k", *small) + 10;
    PlanCache cache(budget);

    // An entry bigger than the whole budget is refused outright
    // (caching it would evict everything and still blow the budget).
    cache.insert("big", payload(budget + 1));
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);

    cache.insert("k", small);
    EXPECT_EQ(cache.bytes(), PlanCache::entry_bytes("k", *small));
    // Replacing a key re-accounts its bytes instead of double
    // counting.
    auto smaller = payload(50);
    cache.insert("k", smaller);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), PlanCache::entry_bytes("k", *smaller));
    const auto hit = cache.lookup("k");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 50u);
}

TEST(PlanCache, HandedOutPayloadSurvivesEviction)
{
    auto p = payload(500);
    const std::size_t each = PlanCache::entry_bytes("a", *p);
    PlanCache cache(each); // room for exactly one entry
    cache.insert("a", p);
    const auto held = cache.lookup("a");
    ASSERT_NE(held, nullptr);
    cache.insert("b", payload(500)); // evicts "a"
    EXPECT_EQ(cache.lookup("a"), nullptr);
    // The shared_ptr handed out earlier is still intact — a response
    // being written to a slow socket cannot be freed under it.
    EXPECT_EQ(held->size(), 500u);
    EXPECT_EQ((*held)[0], 'q');
}

} // namespace
} // namespace permuq::service
