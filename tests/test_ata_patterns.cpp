/**
 * @file
 * Property tests for the ATA pattern generators (paper §3, §5.1).
 *
 * Every pattern must (a) touch only couplers, (b) meet every pair of
 * initial occupants at a compute slot, and (c) respect the linear
 * depth laws the paper derives for each architecture.
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/bipartite_pattern.h"
#include "ata/line_pattern.h"
#include "ata/replay.h"
#include "ata/verify.h"
#include "circuit/metrics.h"
#include "common/rng.h"
#include "problem/generators.h"

namespace permuq {
namespace {

using arch::ArchKind;
using arch::CouplingGraph;

/** Depth of a schedule when replayed as a clique circuit. */
circuit::Metrics
clique_metrics(const CouplingGraph& device, const ata::SwapSchedule& sched,
               const std::vector<PhysicalQubit>& positions)
{
    // Build a mapping placing logical i at positions[i].
    std::int32_t n = static_cast<std::int32_t>(positions.size());
    auto problem = graph::Graph::clique(n);
    circuit::Mapping mapping(positions, device.num_qubits());
    auto circ = ata::replay(device, problem, mapping, sched);
    circuit::expect_valid(circ, device, problem);
    return circuit::compute_metrics(circ);
}

std::vector<PhysicalQubit>
all_positions(const CouplingGraph& device)
{
    std::vector<PhysicalQubit> p(
        static_cast<std::size_t>(device.num_qubits()));
    for (std::int32_t i = 0; i < device.num_qubits(); ++i)
        p[static_cast<std::size_t>(i)] = i;
    return p;
}

// ---------------------------------------------------------------- line

class LinePatternTest : public ::testing::TestWithParam<std::int32_t>
{
};

TEST_P(LinePatternTest, CoversAllPairs)
{
    std::int32_t n = GetParam();
    auto device = arch::make_line(n);
    auto sched = ata::line_pattern(all_positions(device));
    auto report = ata::verify_coverage(device, sched);
    EXPECT_TRUE(report.ok) << report.error << ", missing pairs: "
                           << report.missing.size();
}

TEST_P(LinePatternTest, ComputesEachPairExactlyOnce)
{
    std::int32_t n = GetParam();
    auto device = arch::make_line(n);
    auto sched = ata::line_pattern(all_positions(device));
    std::int64_t computes = 0;
    for (const auto& slot : sched.slots)
        if (slot.kind == ata::Slot::Kind::Compute)
            ++computes;
    EXPECT_EQ(computes, static_cast<std::int64_t>(n) * (n - 1) / 2);
    auto report = ata::verify_coverage(device, sched);
    EXPECT_EQ(report.duplicate_meets, 0);
}

TEST_P(LinePatternTest, DepthIsTwoNMinusTwo)
{
    // Paper Fig 6/7: n compute layers + (n-2) swap layers.
    std::int32_t n = GetParam();
    if (n < 3)
        return;
    auto device = arch::make_line(n);
    auto sched = ata::line_pattern(all_positions(device));
    auto metrics = clique_metrics(device, sched, all_positions(device));
    // Even n: exactly n compute + (n-2) swap layers; odd n needs one
    // extra compute layer (the boundary qubit idles every other layer).
    EXPECT_LE(metrics.depth, n % 2 == 0 ? 2 * n - 2 : 2 * n - 1);
    EXPECT_GE(metrics.depth, n); // at least the n compute layers
}

TEST_P(LinePatternTest, ReversalVariantReversesArrangement)
{
    std::int32_t n = GetParam();
    auto device = arch::make_line(n);
    auto positions = all_positions(device);
    auto sched = ata::line_pattern_with_reversal(positions);
    auto report = ata::verify_coverage(device, sched);
    EXPECT_TRUE(report.ok);
    // Replay against an empty problem: only swaps execute; the final
    // mapping must be the reversal.
    graph::Graph empty(n);
    circuit::Mapping mapping(n, n);
    ata::ReplayOptions options;
    options.stop_early = false;
    options.skip_dead_swaps = false;
    auto circ = ata::replay(device, empty, mapping, sched, options);
    for (std::int32_t i = 0; i < n; ++i)
        EXPECT_EQ(circ.final_mapping().logical_at(i), n - 1 - i);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinePatternTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 12, 15,
                                           16, 25, 32, 33, 64));

// ----------------------------------------------------------- bipartite

struct BipartiteCase
{
    ArchKind kind;
    std::int32_t rows;
    std::int32_t cols;
    std::int32_t top_unit; // index of the upper unit of the pair
};

class BipartiteTest : public ::testing::TestWithParam<BipartiteCase>
{
  protected:
    static CouplingGraph
    make(const BipartiteCase& c)
    {
        switch (c.kind) {
          case ArchKind::Grid:
            return arch::make_grid(c.rows, c.cols);
          case ArchKind::Sycamore:
            return arch::make_sycamore(c.rows, c.cols);
          case ArchKind::Hexagon:
            return arch::make_hexagon(c.rows, c.cols);
          default:
            throw FatalError("unsupported");
        }
    }
};

TEST_P(BipartiteTest, CoversAllCrossPairs)
{
    auto c = GetParam();
    auto device = make(c);
    const auto& a = device.units()[static_cast<std::size_t>(c.top_unit)];
    const auto& b =
        device.units()[static_cast<std::size_t>(c.top_unit + 1)];
    ata::SwapSchedule sched =
        c.kind == ArchKind::Sycamore
            ? ata::sycamore_bipartite(device, a, b)
            : ata::striped_bipartite(device, a, b);
    auto report = ata::verify_bipartite_coverage(device, sched, a, b);
    EXPECT_TRUE(report.ok) << report.error << ", missing "
                           << report.missing.size();
}

TEST_P(BipartiteTest, PreservesUnitOccupantSets)
{
    auto c = GetParam();
    auto device = make(c);
    const auto& a = device.units()[static_cast<std::size_t>(c.top_unit)];
    const auto& b =
        device.units()[static_cast<std::size_t>(c.top_unit + 1)];
    ata::SwapSchedule sched =
        c.kind == ArchKind::Sycamore
            ? ata::sycamore_bipartite(device, a, b)
            : ata::striped_bipartite(device, a, b);
    // Replay swaps only and check each unit keeps its occupant set.
    graph::Graph empty(device.num_qubits());
    circuit::Mapping mapping(device.num_qubits(), device.num_qubits());
    ata::ReplayOptions options;
    options.stop_early = false;
    options.skip_dead_swaps = false;
    auto circ = ata::replay(device, empty, mapping, sched, options);
    auto in_unit = [](const std::vector<PhysicalQubit>& unit,
                      LogicalQubit q) {
        for (PhysicalQubit p : unit)
            if (p == q)
                return true;
        return false;
    };
    for (PhysicalQubit p : a)
        EXPECT_TRUE(in_unit(a, circ.final_mapping().logical_at(p)));
    for (PhysicalQubit p : b)
        EXPECT_TRUE(in_unit(b, circ.final_mapping().logical_at(p)));
}

TEST_P(BipartiteTest, UnitExchangeSwapsWholesale)
{
    auto c = GetParam();
    auto device = make(c);
    const auto& a = device.units()[static_cast<std::size_t>(c.top_unit)];
    const auto& b =
        device.units()[static_cast<std::size_t>(c.top_unit + 1)];
    // unit_exchange asserts the net permutation internally; just check
    // it produces a structurally valid schedule.
    auto sched = ata::unit_exchange(device, a, b);
    std::vector<PhysicalQubit> both = a;
    both.insert(both.end(), b.begin(), b.end());
    graph::Graph empty(device.num_qubits());
    circuit::Mapping mapping(device.num_qubits(), device.num_qubits());
    ata::ReplayOptions options;
    options.stop_early = false;
    options.skip_dead_swaps = false;
    auto circ = ata::replay(device, empty, mapping, sched, options);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(circ.final_mapping().logical_at(a[i]), b[i]);
        EXPECT_EQ(circ.final_mapping().logical_at(b[i]), a[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BipartiteTest,
    ::testing::Values(
        BipartiteCase{ArchKind::Grid, 2, 2, 0},
        BipartiteCase{ArchKind::Grid, 2, 3, 0},
        BipartiteCase{ArchKind::Grid, 2, 4, 0},
        BipartiteCase{ArchKind::Grid, 4, 7, 1},
        BipartiteCase{ArchKind::Grid, 4, 8, 2},
        BipartiteCase{ArchKind::Sycamore, 2, 3, 0},
        BipartiteCase{ArchKind::Sycamore, 2, 4, 0},
        BipartiteCase{ArchKind::Sycamore, 3, 5, 1},
        BipartiteCase{ArchKind::Sycamore, 4, 6, 2},
        BipartiteCase{ArchKind::Sycamore, 4, 8, 1},
        BipartiteCase{ArchKind::Hexagon, 2, 2, 0},
        BipartiteCase{ArchKind::Hexagon, 4, 3, 0},
        BipartiteCase{ArchKind::Hexagon, 4, 4, 1},
        BipartiteCase{ArchKind::Hexagon, 5, 4, 1},
        BipartiteCase{ArchKind::Hexagon, 5, 4, 2},
        BipartiteCase{ArchKind::Hexagon, 6, 5, 3},
        BipartiteCase{ArchKind::Hexagon, 7, 5, 2}));

// --------------------------------------------------------- full device

struct FullCase
{
    ArchKind kind;
    std::int32_t rows;
    std::int32_t cols;
};

class FullAtaTest : public ::testing::TestWithParam<FullCase>
{
  protected:
    static CouplingGraph
    make(const FullCase& c)
    {
        switch (c.kind) {
          case ArchKind::Line:
            return arch::make_line(c.cols);
          case ArchKind::Grid:
            return arch::make_grid(c.rows, c.cols);
          case ArchKind::Sycamore:
            return arch::make_sycamore(c.rows, c.cols);
          case ArchKind::Hexagon:
            return arch::make_hexagon(c.rows, c.cols);
          case ArchKind::HeavyHex:
            return arch::make_heavy_hex(c.rows, c.cols);
          default:
            throw FatalError("unsupported");
        }
    }
};

TEST_P(FullAtaTest, FullScheduleCoversClique)
{
    auto device = make(GetParam());
    auto sched = ata::full_ata_schedule(device);
    auto report = ata::verify_coverage(device, sched);
    EXPECT_TRUE(report.ok) << report.error << ", missing "
                           << report.missing.size() << " of "
                           << device.num_qubits() << " qubits";
}

TEST_P(FullAtaTest, CliqueReplayIsValidAndLinearDepth)
{
    auto device = make(GetParam());
    auto sched = ata::full_ata_schedule(device);
    auto metrics =
        clique_metrics(device, sched, all_positions(device));
    // Linear-depth worst-case bound (paper: grid 1.5n, sycamore 2n,
    // heavy-hex O(n)); allow a generous constant.
    EXPECT_LE(metrics.depth, 8 * device.num_qubits() + 16);
    EXPECT_EQ(metrics.compute_gates,
              static_cast<std::int64_t>(device.num_qubits()) *
                  (device.num_qubits() - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FullAtaTest,
    ::testing::Values(FullCase{ArchKind::Line, 1, 8},
                      FullCase{ArchKind::Line, 1, 17},
                      FullCase{ArchKind::Grid, 3, 3},
                      FullCase{ArchKind::Grid, 4, 4},
                      FullCase{ArchKind::Grid, 4, 5},
                      FullCase{ArchKind::Grid, 5, 5},
                      FullCase{ArchKind::Grid, 6, 7},
                      FullCase{ArchKind::Sycamore, 2, 3},
                      FullCase{ArchKind::Sycamore, 3, 3},
                      FullCase{ArchKind::Sycamore, 4, 4},
                      FullCase{ArchKind::Sycamore, 5, 4},
                      FullCase{ArchKind::Sycamore, 5, 6},
                      FullCase{ArchKind::Hexagon, 2, 2},
                      FullCase{ArchKind::Hexagon, 4, 4},
                      FullCase{ArchKind::Hexagon, 5, 5},
                      FullCase{ArchKind::Hexagon, 6, 5},
                      FullCase{ArchKind::HeavyHex, 2, 3},
                      FullCase{ArchKind::HeavyHex, 2, 7},
                      FullCase{ArchKind::HeavyHex, 3, 7},
                      FullCase{ArchKind::HeavyHex, 4, 11}));

class Lattice3dAtaTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(Lattice3dAtaTest, FullScheduleCoversClique)
{
    auto [nx, ny, nz] = GetParam();
    auto device = arch::make_lattice3d(nx, ny, nz);
    auto sched = ata::full_ata_schedule(device);
    auto report = ata::verify_coverage(device, sched);
    EXPECT_TRUE(report.ok) << report.error << ", missing "
                           << report.missing.size();
}

TEST_P(Lattice3dAtaTest, LinearDepth)
{
    auto [nx, ny, nz] = GetParam();
    auto device = arch::make_lattice3d(nx, ny, nz);
    auto sched = ata::full_ata_schedule(device);
    auto metrics =
        clique_metrics(device, sched, all_positions(device));
    EXPECT_LE(metrics.depth, 8 * device.num_qubits() + 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lattice3dAtaTest,
                         ::testing::Values(std::tuple{2, 2, 2},
                                           std::tuple{3, 3, 3},
                                           std::tuple{3, 2, 4},
                                           std::tuple{4, 4, 4},
                                           std::tuple{2, 3, 5}));

TEST(MappingInvarianceTest, CliqueReplayValidFromShuffledMappings)
{
    // Section 4: "all initial mappings have the same behavior" — a
    // clique schedule replayed from any permutation of the qubits must
    // remain a valid compilation with identical depth and gate count.
    for (auto kind : {ArchKind::Grid, ArchKind::Sycamore,
                      ArchKind::HeavyHex}) {
        SCOPED_TRACE(arch::to_string(kind));
        auto device = arch::smallest_arch(kind, 25);
        auto sched = ata::full_ata_schedule(device);
        auto problem = graph::Graph::clique(device.num_qubits());
        Xoshiro256 rng(55);
        std::vector<PhysicalQubit> perm(
            static_cast<std::size_t>(device.num_qubits()));
        for (std::int32_t i = 0; i < device.num_qubits(); ++i)
            perm[static_cast<std::size_t>(i)] = i;

        circuit::Mapping identity(device.num_qubits(),
                                  device.num_qubits());
        auto reference = ata::replay(device, problem, identity, sched);
        for (int trial = 0; trial < 3; ++trial) {
            rng.shuffle(perm);
            circuit::Mapping mapping(perm, device.num_qubits());
            auto circ = ata::replay(device, problem, mapping, sched);
            circuit::expect_valid(circ, device, problem);
            EXPECT_EQ(circ.depth(), reference.depth());
            EXPECT_EQ(circ.num_compute(), reference.num_compute());
            EXPECT_EQ(circ.num_swaps(), reference.num_swaps());
        }
    }
}

TEST(MumbaiAtaTest, FullScheduleCoversClique)
{
    auto device = arch::make_mumbai();
    auto sched = ata::full_ata_schedule(device);
    auto report = ata::verify_coverage(device, sched);
    EXPECT_TRUE(report.ok) << report.error << ", missing "
                           << report.missing.size();
}

// --------------------------------------------------------------- replay

TEST(ReplayTest, SparseProblemStopsEarly)
{
    auto device = arch::make_grid(4, 4);
    auto sched = ata::full_ata_schedule(device);
    auto sparse = problem::random_graph(16, 0.15, 7);
    auto dense = problem::random_graph(16, 0.9, 7);
    circuit::Mapping mapping(16, 16);
    auto c_sparse = ata::replay(device, sparse, mapping, sched);
    auto c_dense = ata::replay(device, dense, mapping, sched);
    circuit::expect_valid(c_sparse, device, sparse);
    circuit::expect_valid(c_dense, device, dense);
    EXPECT_LT(c_sparse.depth(), c_dense.depth());
}

TEST(ReplayTest, PrefixDoneEdgesAreSkipped)
{
    auto device = arch::make_grid(3, 3);
    auto problem = problem::random_graph(9, 0.5, 3);
    circuit::Mapping mapping(9, 9);
    auto sched = ata::full_ata_schedule(device);
    std::vector<bool> done(static_cast<std::size_t>(problem.num_edges()),
                           false);
    done[0] = true; // pretend a greedy prefix executed edge 0
    auto circ =
        ata::replay(device, problem, mapping, sched, {}, &done);
    EXPECT_EQ(circ.num_compute(), problem.num_edges() - 1);
}

// -------------------------------------------------------------- regions

TEST(RegionTest, BoundingRegionContainsPositions)
{
    auto device = arch::make_sycamore(6, 6);
    std::vector<PhysicalQubit> positions = {7, 8, 14};
    auto region = ata::bounding_region(device, positions);
    auto members = ata::region_positions(device, region);
    for (PhysicalQubit p : positions)
        EXPECT_NE(std::find(members.begin(), members.end(), p),
                  members.end());
}

TEST(RegionTest, RegionScheduleCoversItsPositions)
{
    auto device = arch::make_grid(6, 6);
    ata::Region region;
    region.unit0 = 1;
    region.unit1 = 3;
    region.elem0 = 2;
    region.elem1 = 5;
    auto sched = ata::ata_schedule(device, region);
    auto positions = ata::region_positions(device, region);
    auto report = ata::verify_coverage(device, sched, positions);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(RegionTest, HeavyHexRegionScheduleCovers)
{
    auto device = arch::make_heavy_hex(3, 7);
    ata::Region region;
    region.path0 = 2;
    region.path1 = 14;
    auto sched = ata::ata_schedule(device, region);
    auto positions = ata::region_positions(device, region);
    auto report = ata::verify_coverage(device, sched, positions);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST(RegionTest, SmallerRegionGivesShallowerSchedule)
{
    auto device = arch::make_grid(8, 8);
    ata::Region small;
    small.unit0 = 0;
    small.unit1 = 2;
    small.elem0 = 0;
    small.elem1 = 2;
    auto sched_small = ata::ata_schedule(device, small);
    auto sched_full = ata::full_ata_schedule(device);
    EXPECT_LT(sched_small.num_slots(), sched_full.num_slots());
}

TEST(RegionTest, OverlapAndMerge)
{
    auto device = arch::make_grid(8, 8);
    ata::Region a{0, 3, 0, 3, 0, -1};
    ata::Region b{2, 5, 2, 5, 0, -1};
    ata::Region c{5, 7, 5, 7, 0, -1};
    EXPECT_TRUE(ata::regions_overlap(device, a, b));
    EXPECT_FALSE(ata::regions_overlap(device, a, c));
    auto m = ata::merge_regions(a, b);
    EXPECT_EQ(m.unit0, 0);
    EXPECT_EQ(m.unit1, 5);
}

} // namespace
} // namespace permuq
