/**
 * @file
 * Tests of the batched multi-angle sweep engine (sim/sweep.h): batched
 * results bit-identical to a sequential QaoaObjective loop over the
 * same points across SIMD tiers (scalar / AVX2 / AVX-512 when the CPU
 * has it) and thread counts, on the ideal, weighted, and noisy paths
 * (expectation values AND sampled shot histograms); exact
 * memory_bytes() accounting and batch shrinking under the memory
 * budget; and multi-problem scheduling invariance.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/parallel.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "problem/weighted.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"
#include "sim/simd.h"
#include "sim/statevector.h"
#include "sim/sweep.h"

namespace permuq::sim {
namespace {

/** Restore the SIMD tier and thread count when a test exits. */
struct DispatchGuard
{
    SimdTier tier = active_simd_tier();
    int threads = common::num_threads();
    ~DispatchGuard()
    {
        set_simd_tier(tier);
        common::set_num_threads(threads);
    }
};

/** The reference the engine must reproduce exactly: one QaoaObjective
 *  evaluation per point, sequentially. */
std::vector<double>
sequential_ideal(QaoaObjective& context,
                 const std::vector<QaoaAngles>& points)
{
    std::vector<double> values;
    values.reserve(points.size());
    for (const QaoaAngles& angles : points)
        values.push_back(context.ideal_expectation(angles));
    return values;
}

void
expect_bitwise(const std::vector<double>& got,
               const std::vector<double>& want, const char* label)
{
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(std::memcmp(&got[i], &want[i], sizeof(double)) == 0)
            << label << " point " << i << ": " << got[i]
            << " != " << want[i];
}

TEST(SweepGrid, ShapeAndAngleFormula)
{
    auto grid = sweep_grid(3, 4, 2);
    ASSERT_EQ(grid.size(), 12u);
    const double pi = std::acos(-1.0);
    // Row-major over (gamma_i, beta_j), all layers share the angles.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            const QaoaAngles& pt = grid[i * 4 + j];
            ASSERT_EQ(pt.gamma.size(), 2u);
            ASSERT_EQ(pt.beta.size(), 2u);
            EXPECT_DOUBLE_EQ(pt.gamma[0], double(i + 1) * pi / 4.0);
            EXPECT_DOUBLE_EQ(pt.beta[0],
                             double(j + 1) * (pi / 2.0) / 5.0);
            EXPECT_EQ(pt.gamma[0], pt.gamma[1]);
            EXPECT_EQ(pt.beta[0], pt.beta[1]);
        }
    }
}

TEST(SweepIdeal, BitIdenticalAcrossTiersAndThreads)
{
    DispatchGuard guard;
    auto problem = problem::random_graph(10, 0.35, 3);
    QaoaObjective reference(problem);
    // 25 points with batch 8 exercises full chunks plus a 1-point tail.
    auto points = sweep_grid(5, 5, 2);
    set_simd_tier(SimdTier::Scalar);
    common::set_num_threads(1);
    auto want = sequential_ideal(reference, points);
    for (SimdTier tier :
         {SimdTier::Scalar, SimdTier::Avx2, detected_simd_tier()}) {
        for (int threads : {1, 4}) {
            set_simd_tier(tier);
            common::set_num_threads(threads);
            QaoaObjective context(problem);
            SweepEvaluator evaluator(context);
            SweepResult result = evaluator.ideal_sweep(points);
            expect_bitwise(result.values, want, "ideal sweep");
            EXPECT_EQ(result.points, points.size());
            EXPECT_EQ(result.batch, evaluator.batch());
            EXPECT_EQ(result.memory_bytes, evaluator.memory_bytes());
        }
    }
}

TEST(SweepIdeal, BatchEdgeCases)
{
    auto problem = problem::random_graph(8, 0.4, 9);
    QaoaObjective reference(problem);
    auto points = sweep_grid(3, 3, 1);
    auto want = sequential_ideal(reference, points);
    for (std::size_t batch : {std::size_t(1), std::size_t(3),
                              std::size_t(16)}) {
        SweepOptions options;
        options.batch = batch;
        QaoaObjective context(problem);
        SweepEvaluator evaluator(context, options);
        EXPECT_EQ(evaluator.batch(), batch);
        expect_bitwise(evaluator.ideal_sweep(points).values, want,
                       "batch width");
    }
    // Fewer points than the batch width: one short chunk.
    std::vector<QaoaAngles> few(points.begin(), points.begin() + 2);
    SweepOptions wide;
    wide.batch = 8;
    QaoaObjective context(problem);
    SweepResult result = SweepEvaluator(context, wide).ideal_sweep(few);
    expect_bitwise(result.values,
                   {want[0], want[1]}, "short chunk");
}

TEST(SweepIdeal, BestPointIsFirstMaximum)
{
    auto problem = problem::random_graph(9, 0.3, 5);
    QaoaObjective context(problem);
    auto points = sweep_grid(4, 4, 1);
    SweepResult result = SweepEvaluator(context).ideal_sweep(points);
    std::size_t best = 0;
    for (std::size_t i = 1; i < result.values.size(); ++i)
        if (result.values[i] > result.values[best])
            best = i;
    EXPECT_EQ(result.best_index, best);
    EXPECT_EQ(result.best_value, result.values[best]);
    EXPECT_GT(result.points_per_sec, 0.0);
}

TEST(SweepIdeal, WeightedProblemBitIdentical)
{
    // Weighted spectra are dense (non-uniform coefficients); the
    // batched phase runs out of the baked table, with no LUT.
    auto wp = problem::weighted_random_graph(9, 0.4, 7);
    QaoaObjective reference(wp);
    auto points = sweep_grid(3, 4, 2);
    auto want = sequential_ideal(reference, points);
    QaoaObjective context(wp);
    SweepEvaluator evaluator(context);
    expect_bitwise(evaluator.ideal_sweep(points).values, want,
                   "weighted sweep");
    EXPECT_EQ(evaluator.memory_bytes(),
              SweepEvaluator::memory_bytes(9, 0, evaluator.batch()));
}

TEST(SweepMemory, ExactBytesAndBudgetShrink)
{
    // The footprint formula itself: interleaved amplitudes plus the
    // packed per-point LUT for uniform spectra.
    EXPECT_EQ(SweepEvaluator::memory_bytes(10, 0, 4),
              (std::size_t(1) << 10) * 2 * 4 * 8);
    EXPECT_EQ(SweepEvaluator::memory_bytes(10, 6, 4),
              (std::size_t(1) << 10) * 2 * 4 * 8 + 13 * 2 * 4 * 8);

    auto problem = problem::random_graph(10, 0.35, 3);
    QaoaObjective context(problem);
    SweepOptions unlimited;
    unlimited.batch = 8;
    // The footprint is linear in the batch width, so the per-batch
    // unit cost falls out of planned_memory_bytes at batch 1.
    SweepOptions one;
    one.batch = 1;
    std::size_t unit =
        SweepEvaluator::planned_memory_bytes(context, one);
    EXPECT_EQ(SweepEvaluator::planned_memory_bytes(context, unlimited),
              8 * unit);
    // A budget of three units must shrink the batch to exactly 3.
    SweepOptions tight;
    tight.batch = 8;
    tight.memory_budget_bytes = 3 * unit;
    EXPECT_EQ(SweepEvaluator::planned_batch(context, tight), 3u);
    SweepEvaluator evaluator(context, tight);
    EXPECT_EQ(evaluator.batch(), 3u);
    EXPECT_LE(evaluator.memory_bytes(), tight.memory_budget_bytes);
    EXPECT_EQ(evaluator.memory_bytes(),
              SweepEvaluator::planned_memory_bytes(context, tight));
    // The budget never shrinks below one point.
    SweepOptions starved;
    starved.memory_budget_bytes = 1;
    EXPECT_EQ(SweepEvaluator::planned_batch(context, starved), 1u);
}

TEST(SweepNoisy, ExpectationBitIdenticalToSequential)
{
    DispatchGuard guard;
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 11);
    auto problem = problem::random_graph(8, 0.4, 3);
    auto compiled = core::compile(device, problem);
    auto points = sweep_grid(3, 2, 1);
    NoisySimOptions options;
    options.trajectories = 5;
    options.shots = 400;
    options.seed = 123;
    set_simd_tier(SimdTier::Scalar);
    common::set_num_threads(1);
    QaoaObjective reference(problem);
    std::vector<double> want;
    for (const QaoaAngles& angles : points)
        want.push_back(reference.noisy_expectation(compiled.circuit,
                                                   noise, angles,
                                                   options));
    for (SimdTier tier : {SimdTier::Scalar, detected_simd_tier()}) {
        for (int threads : {1, 4}) {
            set_simd_tier(tier);
            common::set_num_threads(threads);
            QaoaObjective context(problem);
            SweepEvaluator evaluator(context);
            SweepResult result = evaluator.noisy_sweep(
                compiled.circuit, noise, points, options);
            expect_bitwise(result.values, want, "noisy sweep");
        }
    }
    // The op-by-op replay path must agree with itself too.
    NoisySimOptions unfused = options;
    unfused.fuse_diagonals = false;
    QaoaObjective context(problem);
    std::vector<double> want_unfused;
    for (const QaoaAngles& angles : points)
        want_unfused.push_back(context.noisy_expectation(
            compiled.circuit, noise, angles, unfused));
    QaoaObjective batched(problem);
    expect_bitwise(SweepEvaluator(batched)
                       .noisy_sweep(compiled.circuit, noise, points,
                                    unfused)
                       .values,
                   want_unfused, "unfused noisy sweep");
}

TEST(SweepNoisy, SampledShotHistogramsMatchSequential)
{
    DispatchGuard guard;
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 7);
    auto problem = problem::random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, problem);
    auto points = sweep_grid(2, 2, 1);
    NoisySimOptions options;
    options.trajectories = 4;
    options.shots = 300;
    options.seed = 29;
    QaoaObjective reference(problem);
    std::vector<std::vector<std::int64_t>> want;
    for (const QaoaAngles& angles : points)
        want.push_back(reference.noisy_counts(compiled.circuit, noise,
                                              angles, options));
    for (int threads : {1, 4}) {
        common::set_num_threads(threads);
        QaoaObjective context(problem);
        auto counts = SweepEvaluator(context).noisy_sweep_counts(
            compiled.circuit, noise, points, options);
        ASSERT_EQ(counts.size(), want.size()) << threads << " threads";
        for (std::size_t p = 0; p < want.size(); ++p)
            EXPECT_EQ(counts[p], want[p])
                << "point " << p << ", " << threads << " threads";
    }
}

TEST(SweepNoisy, WeightedDelegationBitIdentical)
{
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 5);
    auto wp = problem::weighted_random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, wp.graph);
    auto points = sweep_grid(2, 2, 1);
    NoisySimOptions options;
    options.trajectories = 3;
    options.shots = 200;
    options.seed = 41;
    QaoaObjective reference(wp);
    std::vector<double> want;
    for (const QaoaAngles& angles : points)
        want.push_back(reference.noisy_expectation(compiled.circuit,
                                                   noise, angles,
                                                   options));
    QaoaObjective context(wp);
    expect_bitwise(SweepEvaluator(context)
                       .noisy_sweep(compiled.circuit, noise, points,
                                    options)
                       .values,
                   want, "weighted noisy sweep");
}

TEST(SweepMultiProblem, ResultsInvariantAcrossSchedules)
{
    DispatchGuard guard;
    std::vector<graph::Graph> graphs;
    graphs.push_back(problem::random_graph(8, 0.4, 3));
    graphs.push_back(problem::random_graph(9, 0.35, 5));
    graphs.push_back(problem::random_graph(10, 0.3, 7));
    auto points = sweep_grid(3, 3, 2);

    // Standalone reference per problem, single-threaded scalar.
    set_simd_tier(SimdTier::Scalar);
    common::set_num_threads(1);
    std::vector<std::vector<double>> want;
    for (const auto& g : graphs) {
        QaoaObjective context(g);
        want.push_back(SweepEvaluator(context).ideal_sweep(points).values);
    }

    for (int threads : {1, 4}) {
        common::set_num_threads(threads);
        set_simd_tier(detected_simd_tier());
        std::vector<QaoaObjective> contexts;
        contexts.reserve(graphs.size());
        for (const auto& g : graphs)
            contexts.emplace_back(g);
        std::vector<QaoaObjective*> objectives;
        for (auto& c : contexts)
            objectives.push_back(&c);
        MultiSweepResult result = sweep_problems(objectives, points);
        ASSERT_EQ(result.problems.size(), graphs.size());
        for (std::size_t p = 0; p < graphs.size(); ++p)
            expect_bitwise(result.problems[p].values, want[p],
                           "multi-problem sweep");
        EXPECT_GE(result.problems_in_flight, 1u);
        EXPECT_GT(result.points_per_sec, 0.0);
    }
}

TEST(SweepMultiProblem, RespectsMemoryBudget)
{
    auto g0 = problem::random_graph(9, 0.35, 3);
    auto g1 = problem::random_graph(9, 0.35, 5);
    QaoaObjective c0(g0), c1(g1);
    std::vector<QaoaObjective*> objectives{&c0, &c1};
    auto points = sweep_grid(2, 2, 1);
    // Budget fits exactly one problem's footprint at batch 1: the
    // scheduler must fall back to serial waves and report it.
    SweepOptions one;
    one.batch = 1;
    std::size_t unit = SweepEvaluator::planned_memory_bytes(c0, one);
    SweepOptions tight;
    tight.batch = 8;
    tight.memory_budget_bytes = unit;
    MultiSweepResult result =
        sweep_problems(objectives, points, tight);
    EXPECT_EQ(result.problems_in_flight, 1u);
    EXPECT_LE(result.peak_memory_bytes, tight.memory_budget_bytes);
    // Results stay bit-identical to the unconstrained schedule.
    QaoaObjective f0(g0), f1(g1);
    std::vector<QaoaObjective*> fresh{&f0, &f1};
    MultiSweepResult loose = sweep_problems(fresh, points);
    for (std::size_t p = 0; p < 2; ++p)
        expect_bitwise(result.problems[p].values,
                       loose.problems[p].values, "budgeted schedule");
}

} // namespace
} // namespace permuq::sim
