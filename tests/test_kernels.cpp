/**
 * @file
 * Tests of the SIMD kernel layer and the amortized QAOA objective:
 * every statevector kernel cross-checked against an independent dense
 * reference simulator (scalar tier, AVX2 tier, and threaded) to 1e-12;
 * bitwise identity of amplitudes across SIMD tiers and thread counts;
 * the blocked mixer pass vs sequential per-qubit RX; QaoaObjective vs
 * the one-shot free functions over random angle sets; and the exact
 * memory estimates.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "problem/weighted.h"
#include "sim/diagonal.h"
#include "sim/qaoa.h"
#include "sim/qaoa_objective.h"
#include "sim/simd.h"
#include "sim/statevector.h"

namespace permuq::sim {
namespace {

using Amplitude = std::complex<double>;

/** Restore the SIMD tier and thread count when a test exits. */
struct DispatchGuard
{
    SimdTier tier = active_simd_tier();
    int threads = common::num_threads();
    ~DispatchGuard()
    {
        set_simd_tier(tier);
        common::set_num_threads(threads);
    }
};

/**
 * Independent dense reference simulator: every gate is a literal
 * matrix applied by skip-scanning the full 2^n range with textbook
 * complex arithmetic. Shares no code (and no operation ordering) with
 * the production kernels.
 */
class DenseRef
{
  public:
    explicit DenseRef(std::int32_t n)
        : n_(n), amp_(std::size_t(1) << n, Amplitude(0.0, 0.0))
    {
        amp_[0] = Amplitude(1.0, 0.0);
    }

    void
    one_qubit(std::int32_t q, Amplitude u00, Amplitude u01,
              Amplitude u10, Amplitude u11)
    {
        const std::size_t bit = std::size_t(1) << q;
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            if (i & bit)
                continue;
            Amplitude a0 = amp_[i];
            Amplitude a1 = amp_[i | bit];
            amp_[i] = u00 * a0 + u01 * a1;
            amp_[i | bit] = u10 * a0 + u11 * a1;
        }
    }

    void
    h(std::int32_t q)
    {
        const double s = 1.0 / std::sqrt(2.0);
        one_qubit(q, {s, 0}, {s, 0}, {s, 0}, {-s, 0});
    }

    void
    rx(std::int32_t q, double theta)
    {
        const double c = std::cos(theta / 2.0);
        const double s = std::sin(theta / 2.0);
        one_qubit(q, {c, 0}, {0, -s}, {0, -s}, {c, 0});
    }

    void
    rz(std::int32_t q, double theta)
    {
        one_qubit(q, std::polar(1.0, -theta / 2.0), {0, 0}, {0, 0},
                  std::polar(1.0, theta / 2.0));
    }

    void
    x(std::int32_t q)
    {
        one_qubit(q, {0, 0}, {1, 0}, {1, 0}, {0, 0});
    }

    void
    y(std::int32_t q)
    {
        one_qubit(q, {0, 0}, {0, -1}, {0, 1}, {0, 0});
    }

    void
    z(std::int32_t q)
    {
        one_qubit(q, {1, 0}, {0, 0}, {0, 0}, {-1, 0});
    }

    void
    cx(std::int32_t control, std::int32_t target)
    {
        const std::size_t cbit = std::size_t(1) << control;
        const std::size_t tbit = std::size_t(1) << target;
        for (std::size_t i = 0; i < amp_.size(); ++i)
            if ((i & cbit) && !(i & tbit))
                std::swap(amp_[i], amp_[i | tbit]);
    }

    void
    swap_q(std::int32_t a, std::int32_t b)
    {
        const std::size_t abit = std::size_t(1) << a;
        const std::size_t bbit = std::size_t(1) << b;
        for (std::size_t i = 0; i < amp_.size(); ++i)
            if ((i & abit) && !(i & bbit))
                std::swap(amp_[i ^ abit ^ bbit], amp_[i]);
    }

    void
    rzz(std::int32_t a, std::int32_t b, double theta)
    {
        const std::size_t abit = std::size_t(1) << a;
        const std::size_t bbit = std::size_t(1) << b;
        for (std::size_t i = 0; i < amp_.size(); ++i) {
            bool same = ((i & abit) != 0) == ((i & bbit) != 0);
            amp_[i] *= std::polar(1.0, same ? -theta / 2 : theta / 2);
        }
    }

    void
    cphase(std::int32_t a, std::int32_t b, double theta)
    {
        const std::size_t abit = std::size_t(1) << a;
        const std::size_t bbit = std::size_t(1) << b;
        for (std::size_t i = 0; i < amp_.size(); ++i)
            if ((i & abit) && (i & bbit))
                amp_[i] *= std::polar(1.0, theta);
    }

    void
    phase_table(const std::vector<double>& angles, double scale)
    {
        for (std::size_t i = 0; i < amp_.size(); ++i)
            amp_[i] *= std::polar(1.0, scale * angles[i]);
    }

    const std::vector<Amplitude>& amplitudes() const { return amp_; }

  private:
    std::int32_t n_;
    std::vector<Amplitude> amp_;
};

void
expect_close(const std::vector<Amplitude>& got,
             const std::vector<Amplitude>& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].real(), want[i].real(), 1e-12)
            << what << " amplitude " << i;
        EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-12)
            << what << " amplitude " << i;
    }
}

void
expect_bitwise(const std::vector<Amplitude>& got,
               const std::vector<Amplitude>& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(Amplitude)), 0)
            << what << " amplitude " << i << " got ("
            << got[i].real() << ", " << got[i].imag() << ") want ("
            << want[i].real() << ", " << want[i].imag() << ")";
}

/** Drive both simulators through a circuit covering every kernel:
 *  all qubit positions (vector body, prologue, tail, and the
 *  below-vector-width fallbacks) and all two-qubit bit layouts. */
template <typename Sim, typename Ref>
void
run_kernel_gauntlet(Sim& sv, Ref& ref)
{
    const std::int32_t n = sv.num_qubits();
    std::int32_t angle = 1;
    auto next_angle = [&] { return 0.1 * angle++; };
    for (std::int32_t q = 0; q < n; ++q) {
        sv.apply_h(q);
        ref.h(q);
    }
    for (std::int32_t q = 0; q < n; ++q) {
        double t1 = next_angle(), t2 = next_angle();
        sv.apply_rx(q, t1);
        ref.rx(q, t1);
        sv.apply_rz(q, t2);
        ref.rz(q, t2);
        sv.apply_x(q);
        ref.x(q);
        sv.apply_y(q);
        ref.y(q);
        sv.apply_z(q);
        ref.z(q);
    }
    for (std::int32_t a = 0; a < n; ++a)
        for (std::int32_t b = a + 1; b < n; ++b) {
            double t1 = next_angle(), t2 = next_angle();
            sv.apply_cx(a, b);
            ref.cx(a, b);
            sv.apply_cx(b, a);
            ref.cx(b, a);
            sv.apply_swap(a, b);
            ref.swap_q(a, b);
            sv.apply_rzz(a, b, t1);
            ref.rzz(a, b, t1);
            sv.apply_cphase(a, b, t2);
            ref.cphase(a, b, t2);
        }
    // Uniform DiagonalBatch (phase-LUT path) and a dense phase table.
    DiagonalBatch batch;
    for (std::int32_t q = 0; q + 1 < n; ++q)
        batch.add_rzz(q, q + 1, 1.0);
    batch.apply(sv, 0.7);
    for (std::int32_t q = 0; q + 1 < n; ++q)
        ref.rzz(q, q + 1, 0.7);
    std::vector<double> angles(sv.amplitudes().size());
    for (std::size_t i = 0; i < angles.size(); ++i)
        angles[i] = 0.01 * static_cast<double>(i % 37) - 0.1;
    sv.apply_phase_table(angles, 1.3);
    ref.phase_table(angles, 1.3);
}

TEST(Kernels, EveryKernelMatchesDenseReferencePerTier)
{
    DispatchGuard guard;
    for (std::int32_t n : {1, 2, 3, 4, 5, 6}) {
        for (SimdTier tier : {SimdTier::Scalar, detected_simd_tier()}) {
            set_simd_tier(tier);
            Statevector sv(n);
            DenseRef ref(n);
            run_kernel_gauntlet(sv, ref);
            expect_close(sv.amplitudes(), ref.amplitudes(),
                         simd_tier_name(tier));
            // Probabilities and norm reductions against the reference.
            auto probs = sv.probabilities();
            double norm = 0.0;
            for (std::size_t i = 0; i < probs.size(); ++i) {
                EXPECT_NEAR(probs[i], std::norm(ref.amplitudes()[i]),
                            1e-12);
                norm += probs[i];
            }
            EXPECT_NEAR(sv.norm_sq(), norm, 1e-12);
            EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-10);
        }
    }
}

TEST(Kernels, TiersAreBitIdentical)
{
    if (detected_simd_tier() == SimdTier::Scalar)
        GTEST_SKIP() << "no vector tier available on this host";
    DispatchGuard guard;
    for (std::int32_t n : {3, 6, 9}) {
        set_simd_tier(SimdTier::Scalar);
        Statevector scalar(n);
        DenseRef ref_scalar(n);
        run_kernel_gauntlet(scalar, ref_scalar);
        double scalar_norm = scalar.norm_sq();

        set_simd_tier(detected_simd_tier());
        Statevector vec(n);
        DenseRef ref_vec(n);
        run_kernel_gauntlet(vec, ref_vec);

        expect_bitwise(vec.amplitudes(), scalar.amplitudes(),
                       "scalar vs vector tier");
        double vec_norm = vec.norm_sq();
        EXPECT_TRUE(std::memcmp(&scalar_norm, &vec_norm,
                                sizeof(double)) == 0);
    }
}

TEST(Kernels, ThreadCountsAreBitIdentical)
{
    DispatchGuard guard;
    const std::int32_t n = 9;
    common::set_num_threads(1);
    Statevector serial(n);
    DenseRef ref1(n);
    run_kernel_gauntlet(serial, ref1);
    double serial_norm = serial.norm_sq();
    for (std::int32_t threads : {2, 4, 7}) {
        common::set_num_threads(threads);
        Statevector par(n);
        DenseRef ref2(n);
        run_kernel_gauntlet(par, ref2);
        expect_bitwise(par.amplitudes(), serial.amplitudes(),
                       "1 thread vs N threads");
        double par_norm = par.norm_sq();
        EXPECT_TRUE(std::memcmp(&serial_norm, &par_norm,
                                sizeof(double)) == 0);
    }
}

TEST(Kernels, BlockedMixerMatchesSequentialRxBitwise)
{
    DispatchGuard guard;
    // Spans n < kMixerTileQubits (single-tile path), n == tile, and
    // n > tile with both even and odd high-qubit counts.
    for (std::int32_t n : {1, 2, 5, 11, 12, 13, 14}) {
        for (SimdTier tier : {SimdTier::Scalar, detected_simd_tier()}) {
            set_simd_tier(tier);
            Statevector blocked(n), sequential(n);
            Xoshiro256 rng(42);
            for (std::int32_t q = 0; q < n; ++q) {
                double t = rng.next_double();
                blocked.apply_rx(q, t);
                sequential.apply_rx(q, t);
            }
            const double beta = 0.37;
            blocked.apply_rx_all(beta);
            for (std::int32_t q = 0; q < n; ++q)
                sequential.apply_rx(q, beta);
            expect_bitwise(blocked.amplitudes(),
                           sequential.amplitudes(), "blocked mixer");
        }
    }
}

TEST(Kernels, ResetToPlusMatchesHColumn)
{
    Statevector plus(5), h(5);
    plus.apply_x(0); // make the state non-trivial before reset
    plus.reset_to_plus();
    for (std::int32_t q = 0; q < 5; ++q)
        h.apply_h(q);
    expect_close(plus.amplitudes(), h.amplitudes(), "reset_to_plus");
}

TEST(Kernels, SimdTierControls)
{
    DispatchGuard guard;
    set_simd_tier(SimdTier::Scalar);
    EXPECT_EQ(active_simd_tier(), SimdTier::Scalar);
    EXPECT_STREQ(simd_tier_name(SimdTier::Scalar), "scalar");
    EXPECT_STREQ(simd_tier_name(SimdTier::Avx2), "avx2");
    EXPECT_STREQ(simd_tier_name(SimdTier::Avx512), "avx512");
    // Requests degrade one tier at a time to what the build + CPU
    // support, and never upgrade: asking for AVX2 on an AVX-512
    // machine stays on AVX2.
    set_simd_tier(SimdTier::Avx2);
    if (detected_simd_tier() == SimdTier::Scalar)
        EXPECT_EQ(active_simd_tier(), SimdTier::Scalar);
    else
        EXPECT_EQ(active_simd_tier(), SimdTier::Avx2);
    // The top request clamps to the detected capability.
    set_simd_tier(SimdTier::Avx512);
    EXPECT_EQ(active_simd_tier(), detected_simd_tier());
    EXPECT_TRUE(detected_simd_tier() == SimdTier::Scalar ||
                simd_compiled_in());
}

TEST(QaoaObjectiveTest, MatchesFreshEvaluationOver50AngleSets)
{
    auto problem = problem::random_graph(8, 0.4, 3);
    QaoaObjective context(problem);
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::size_t p = 1 + trial % 3;
        QaoaAngles angles;
        for (std::size_t l = 0; l < p; ++l) {
            angles.gamma.push_back(4.0 * rng.next_double() - 2.0);
            angles.beta.push_back(4.0 * rng.next_double() - 2.0);
        }
        double fresh = ideal_expectation(problem, angles);
        double reused = context.ideal_expectation(angles);
        EXPECT_EQ(fresh, reused) << "trial " << trial;
        EXPECT_TRUE(std::memcmp(&fresh, &reused, sizeof(double)) == 0);
    }
}

TEST(QaoaObjectiveTest, IdealExpectationBitIdenticalAcrossTiers)
{
    DispatchGuard guard;
    auto problem = problem::random_graph(10, 0.3, 5);
    QaoaAngles angles{{0.4, 0.9}, {0.35, 0.15}};
    set_simd_tier(SimdTier::Scalar);
    common::set_num_threads(1);
    double scalar1 = QaoaObjective(problem).ideal_expectation(angles);
    common::set_num_threads(4);
    double scalar4 = QaoaObjective(problem).ideal_expectation(angles);
    set_simd_tier(detected_simd_tier());
    double vec4 = QaoaObjective(problem).ideal_expectation(angles);
    EXPECT_TRUE(std::memcmp(&scalar1, &scalar4, sizeof(double)) == 0);
    EXPECT_TRUE(std::memcmp(&scalar1, &vec4, sizeof(double)) == 0);
}

TEST(QaoaObjectiveTest, CutLookupMatchesEdgeScan)
{
    auto problem = problem::random_graph(7, 0.5, 11);
    QaoaObjective context(problem);
    for (std::uint64_t z = 0; z < (std::uint64_t(1) << 7); ++z)
        EXPECT_EQ(context.cut(z),
                  static_cast<double>(cut_value(problem, z)))
            << "state " << z;
}

TEST(QaoaObjectiveTest, NoisyPathsMatchFreeFunctions)
{
    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, 11);
    auto problem = problem::random_graph(8, 0.4, 3);
    auto compiled = core::compile(device, problem);
    QaoaAngles angles{{0.4}, {0.35}};
    NoisySimOptions options;
    options.trajectories = 6;
    options.shots = 500;
    options.seed = 123;
    QaoaObjective context(problem);
    // Same RNG substreams, same kernels: the amortized path must be
    // exactly the one-shot free functions, not merely close.
    EXPECT_EQ(noisy_expectation(problem, compiled.circuit, noise,
                                angles, options),
              context.noisy_expectation(compiled.circuit, noise, angles,
                                        options));
    EXPECT_EQ(noisy_counts(problem, compiled.circuit, noise, angles,
                           options),
              context.noisy_counts(compiled.circuit, noise, angles,
                                   options));
    EXPECT_EQ(noisy_distribution(problem, compiled.circuit, noise,
                                 angles, options),
              context.noisy_distribution(compiled.circuit, noise,
                                         angles, options));
    // The fused fast path must agree with the op-by-op replay.
    NoisySimOptions unfused = options;
    unfused.fuse_diagonals = false;
    EXPECT_NEAR(context.noisy_expectation(compiled.circuit, noise,
                                          angles, options),
                context.noisy_expectation(compiled.circuit, noise,
                                          angles, unfused),
                1e-9);
}

TEST(QaoaObjectiveTest, WeightedMatchesFreeFunctions)
{
    auto wp = problem::weighted_random_graph(8, 0.4, 3);
    QaoaObjective context(wp);
    EXPECT_TRUE(context.weighted());
    Xoshiro256 rng(9);
    for (int trial = 0; trial < 10; ++trial) {
        QaoaAngles angles{{2.0 * rng.next_double() - 1.0},
                          {2.0 * rng.next_double() - 1.0}};
        EXPECT_EQ(ideal_expectation(wp, angles),
                  context.ideal_expectation(angles));
    }
    for (std::uint64_t z = 0; z < 32; ++z)
        EXPECT_NEAR(context.cut(z), cut_weight(wp, z), 1e-12);
}

TEST(MemoryEstimate, ExactBytes)
{
    // 2^n * sizeof(complex<double>), no integer-MB truncation.
    EXPECT_EQ(Statevector::memory_bytes(1), 32u);
    EXPECT_EQ(Statevector::memory_bytes(10), (std::size_t(1) << 10) * 16);
    EXPECT_EQ(Statevector::memory_bytes(26), (std::size_t(1) << 26) * 16);
    auto problem = problem::random_graph(10, 0.3, 5);
    QaoaObjective context(problem);
    // The context owns the scratch state plus the baked cut spectrum.
    EXPECT_EQ(context.memory_bytes(),
              Statevector::memory_bytes(10) +
                  (std::size_t(1) << 10) * sizeof(double));
}

} // namespace
} // namespace permuq::sim
