/**
 * @file
 * Unit tests for the generic graph library: container invariants, BFS
 * distances, connected components, coloring, and matchings.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/coloring.h"
#include "graph/components.h"
#include "graph/distance.h"
#include "graph/graph.h"
#include "graph/matching.h"

namespace permuq::graph {
namespace {

Graph
path_graph(std::int32_t n)
{
    Graph g(n);
    for (std::int32_t i = 0; i + 1 < n; ++i)
        g.add_edge(i, i + 1);
    return g;
}

TEST(GraphTest, BasicInvariants)
{
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 1);
    EXPECT_EQ(g.num_vertices(), 4);
    EXPECT_EQ(g.num_edges(), 2);
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(3), 0);
}

TEST(GraphTest, RejectsBadEdges)
{
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_THROW(g.add_edge(0, 1), FatalError); // duplicate
    EXPECT_THROW(g.add_edge(1, 0), FatalError); // duplicate reversed
    EXPECT_THROW(g.add_edge(1, 1), FatalError); // self loop
    EXPECT_THROW(g.add_edge(0, 3), FatalError); // out of range
}

TEST(GraphTest, NeighborsAreSorted)
{
    Graph g(5);
    g.add_edge(2, 4);
    g.add_edge(2, 0);
    g.add_edge(2, 3);
    auto nbrs = g.neighbors(2);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, CliqueAndDensity)
{
    auto k5 = Graph::clique(5);
    EXPECT_EQ(k5.num_edges(), 10);
    EXPECT_DOUBLE_EQ(k5.density(), 1.0);
    EXPECT_DOUBLE_EQ(Graph(3).density(), 0.0);
    EXPECT_DOUBLE_EQ(path_graph(5).density(), 0.4);
}

TEST(DistanceTest, PathDistances)
{
    auto g = path_graph(6);
    auto d = bfs_distances(g, 0);
    for (std::int32_t v = 0; v < 6; ++v)
        EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(DistanceTest, DisconnectedIsUnreachable)
{
    Graph g(4);
    g.add_edge(0, 1);
    auto d = bfs_distances(g, 0);
    EXPECT_EQ(d[2], kUnreachable);
    DistanceMatrix m(g);
    EXPECT_EQ(m.at(0, 2), kUnreachable);
    EXPECT_EQ(m.at(0, 1), 1);
}

TEST(DistanceTest, MatrixMatchesBfs)
{
    Xoshiro256 rng(17);
    Graph g(20);
    for (int k = 0; k < 40; ++k) {
        auto u = static_cast<std::int32_t>(rng.next_below(20));
        auto v = static_cast<std::int32_t>(rng.next_below(20));
        if (u != v && !g.has_edge(u, v))
            g.add_edge(u, v);
    }
    DistanceMatrix m(g);
    for (std::int32_t s = 0; s < 20; ++s) {
        auto d = bfs_distances(g, s);
        for (std::int32_t v = 0; v < 20; ++v)
            EXPECT_EQ(m.at(s, v), d[static_cast<std::size_t>(v)]);
    }
}

TEST(DistanceTest, DiameterOfPath)
{
    DistanceMatrix m(path_graph(9));
    EXPECT_EQ(m.diameter(), 8);
}

TEST(ComponentsTest, SplitsCorrectly)
{
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(4, 5);
    auto c = connected_components(g);
    // 0-1-2 | 3 | 4-5 | 6 -> 4 components including isolated ones.
    EXPECT_EQ(c.members.size(), 4u);
    EXPECT_EQ(c.component_of[0], c.component_of[2]);
    EXPECT_NE(c.component_of[0], c.component_of[4]);
}

TEST(ComponentsTest, SkipIsolated)
{
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(4, 5);
    auto c = connected_components(g, /*skip_isolated=*/true);
    EXPECT_EQ(c.members.size(), 2u);
    EXPECT_EQ(c.component_of[3], -1);
    EXPECT_EQ(c.component_of[6], -1);
}

TEST(ComponentsTest, EdgeSubset)
{
    std::vector<VertexPair> edges = {{0, 1}, {2, 3}, {3, 4}};
    auto c = edge_subset_components(8, edges);
    EXPECT_EQ(c.members.size(), 2u);
    EXPECT_EQ(c.component_of[5], -1);
    EXPECT_EQ(c.component_of[2], c.component_of[4]);
}

TEST(ColoringTest, ProperOnRandomGraphs)
{
    Xoshiro256 rng(23);
    for (int trial = 0; trial < 10; ++trial) {
        Graph g(30);
        for (int k = 0; k < 100; ++k) {
            auto u = static_cast<std::int32_t>(rng.next_below(30));
            auto v = static_cast<std::int32_t>(rng.next_below(30));
            if (u != v && !g.has_edge(u, v))
                g.add_edge(u, v);
        }
        auto coloring = greedy_coloring(g);
        for (const auto& e : g.edges())
            EXPECT_NE(coloring.color_of[static_cast<std::size_t>(e.a)],
                      coloring.color_of[static_cast<std::size_t>(e.b)]);
        // Welsh-Powell bound: colors <= max degree + 1.
        std::int32_t max_deg = 0;
        for (std::int32_t v = 0; v < 30; ++v)
            max_deg = std::max(max_deg, g.degree(v));
        EXPECT_LE(coloring.num_colors, max_deg + 1);
    }
}

TEST(ColoringTest, BipartiteUsesTwoColors)
{
    // Even cycle is 2-colorable and Welsh-Powell finds it.
    Graph g(6);
    for (std::int32_t i = 0; i < 6; ++i)
        g.add_edge(i, (i + 1) % 6);
    auto coloring = greedy_coloring(g);
    EXPECT_EQ(coloring.num_colors, 2);
    EXPECT_EQ(largest_class(coloring), 0);
    EXPECT_EQ(coloring.classes[0].size(), 3u);
}

TEST(MatchingTest, GreedyIsAMatching)
{
    std::vector<WeightedEdge> edges = {
        {0, 1, 5.0}, {1, 2, 4.0}, {2, 3, 3.0}, {3, 0, 2.0}, {0, 2, 1.0}};
    auto picks = greedy_max_weight_matching(4, edges);
    std::vector<bool> used(4, false);
    for (auto i : picks) {
        const auto& e = edges[static_cast<std::size_t>(i)];
        EXPECT_FALSE(used[static_cast<std::size_t>(e.u)]);
        EXPECT_FALSE(used[static_cast<std::size_t>(e.v)]);
        used[static_cast<std::size_t>(e.u)] = true;
        used[static_cast<std::size_t>(e.v)] = true;
    }
    // Greedy takes (0,1) then (2,3).
    EXPECT_NEAR(matching_weight(edges, picks), 8.0, 1e-12);
}

TEST(MatchingTest, ExactBeatsOrTiesGreedy)
{
    Xoshiro256 rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        std::int32_t n = 8;
        std::vector<WeightedEdge> edges;
        for (std::int32_t u = 0; u < n; ++u)
            for (std::int32_t v = u + 1; v < n; ++v)
                if (rng.next_double() < 0.4)
                    edges.push_back({u, v, rng.next_double()});
        auto greedy = greedy_max_weight_matching(n, edges);
        auto exact = exact_max_weight_matching(n, edges);
        EXPECT_GE(matching_weight(edges, exact) + 1e-12,
                  matching_weight(edges, greedy));
        // Greedy maximal matching is a 1/2 approximation.
        EXPECT_GE(matching_weight(edges, greedy) * 2 + 1e-12,
                  matching_weight(edges, exact));
    }
}

TEST(MatchingTest, EqualWeightTieBreakIsInputOrderInvariant)
{
    // All-equal weights: the sort key falls through to (u asc, v asc),
    // which is total over distinct couplers, so the chosen endpoint
    // pairs must not depend on the order candidates were accumulated.
    std::vector<WeightedEdge> edges = {
        {2, 3, 1.0}, {0, 1, 1.0}, {4, 5, 1.0}, {1, 2, 1.0}, {3, 4, 1.0},
        {0, 5, 1.0}};
    auto pairs_of = [&](const std::vector<WeightedEdge>& e) {
        auto picks = greedy_max_weight_matching(6, e);
        std::vector<std::pair<std::int32_t, std::int32_t>> out;
        for (auto i : picks)
            out.emplace_back(e[static_cast<std::size_t>(i)].u,
                             e[static_cast<std::size_t>(i)].v);
        std::sort(out.begin(), out.end());
        return out;
    };
    auto reference = pairs_of(edges);
    EXPECT_EQ(reference.size(), 3u); // perfect matching on the 6-cycle
    std::vector<WeightedEdge> permuted = edges;
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        for (std::size_t i = permuted.size(); i > 1; --i)
            std::swap(permuted[i - 1],
                      permuted[static_cast<std::size_t>(
                          rng.next_below(i))]);
        EXPECT_EQ(pairs_of(permuted), reference);
    }
}

TEST(DistanceTest, UnreachablePropagatesAcrossComponents)
{
    // Three components; every cross-component query must decode to
    // kUnreachable through both the checked and the raw row access.
    Graph g(8);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(3, 4);
    // 5, 6, 7 isolated except 6-7.
    g.add_edge(6, 7);
    DistanceMatrix m(g);
    std::vector<std::int32_t> comp = {0, 0, 0, 1, 1, 2, 3, 3};
    for (std::int32_t u = 0; u < 8; ++u) {
        const std::uint16_t* row = m.row(u);
        for (std::int32_t v = 0; v < 8; ++v) {
            std::int32_t via_raw = DistanceMatrix::decode(
                row[static_cast<std::size_t>(v)]);
            EXPECT_EQ(via_raw, m.at(u, v));
            if (comp[static_cast<std::size_t>(u)] !=
                comp[static_cast<std::size_t>(v)]) {
                EXPECT_EQ(m.at(u, v), kUnreachable);
                EXPECT_EQ(row[static_cast<std::size_t>(v)],
                          DistanceMatrix::kRawUnreachable);
            } else {
                EXPECT_LT(m.at(u, v), kUnreachable);
            }
        }
    }
}

TEST(MatchingTest, ExactKnownOptimum)
{
    // Triangle chain where greedy's first pick blocks the optimum.
    std::vector<WeightedEdge> edges = {
        {0, 1, 3.0}, {1, 2, 5.0}, {2, 3, 3.0}};
    auto exact = exact_max_weight_matching(4, edges);
    EXPECT_NEAR(matching_weight(edges, exact), 6.0, 1e-12);
    EXPECT_EQ(exact.size(), 2u);
}

} // namespace
} // namespace permuq::graph
