/**
 * @file
 * Semantics of the compiler tier dial (CompilerOptions::tier):
 *
 *  - `best` (and the unset-env default) stays byte-identical to the
 *    pre-tier compiler, pinned by golden hashes shared with
 *    test_compile_determinism.cpp;
 *  - `auto` resolves the PERMUQ_TIER environment variable;
 *  - `fast` and `balanced` are thread-count invariant;
 *  - every fast-tier plan passes Tier B symbolic verification and
 *    expect_valid() on every regular topology, and falls back to
 *    `balanced` (counting permuq.compile.fast.fallback) on custom
 *    devices that have no ATA pattern;
 *  - the vecops kernels are bit-identical across the scalar and AVX2
 *    tiers, directly and through whole-compile hashes;
 *  - fuzz reproducers round-trip the tier axis.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "arch/coupling_graph.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"
#include "common/vecops.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "verify/equivalence.h"
#include "verify/fuzz.h"

namespace permuq {
namespace {

namespace vecops = common::vecops;

std::uint64_t
circuit_hash(const circuit::Circuit& c)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const auto& op : c.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.p)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.q)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.b)));
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.cycle)));
    }
    mix(static_cast<std::uint64_t>(c.depth()));
    mix(static_cast<std::uint64_t>(c.num_compute()));
    mix(static_cast<std::uint64_t>(c.num_swaps()));
    for (std::int32_t l = 0; l < c.final_mapping().num_logical(); ++l)
        mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(c.final_mapping().physical_of(l))));
    return h;
}

std::uint64_t
compile_hash(arch::ArchKind kind, std::int32_t n, double density,
             std::uint64_t seed, core::CompileTier tier)
{
    auto device = arch::smallest_arch(kind, n);
    auto problem = problem::random_graph(n, density, seed);
    core::CompilerOptions options;
    options.tier = tier;
    auto result = core::compile(device, problem, options);
    return circuit_hash(result.circuit);
}

/** RAII guard: sets PERMUQ_TIER for one scope, restores on exit. */
class ScopedTierEnv
{
public:
    explicit ScopedTierEnv(const char* value)
    {
        const char* old = std::getenv("PERMUQ_TIER");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            setenv("PERMUQ_TIER", value, 1);
        else
            unsetenv("PERMUQ_TIER");
    }
    ~ScopedTierEnv()
    {
        if (had_)
            setenv("PERMUQ_TIER", saved_.c_str(), 1);
        else
            unsetenv("PERMUQ_TIER");
    }

private:
    bool had_ = false;
    std::string saved_;
};

// A slice of test_compile_determinism.cpp's frozen PR 1 hashes: tier
// Best (explicitly and as the unset-env Auto default) must keep
// reproducing the historical compiler bit for bit.
struct GoldenCase
{
    arch::ArchKind kind;
    std::int32_t n;
    double density;
    std::uint64_t seed;
    std::uint64_t hash;
};

const GoldenCase kGolden[] = {
    {arch::ArchKind::HeavyHex, 32, 0.3, 17, 0x2bf117cd5e38403aull},
    {arch::ArchKind::Sycamore, 64, 0.3, 7, 0x08b5abe534cd92efull},
    {arch::ArchKind::Grid, 36, 0.4, 11, 0x606ec4e52e4bf6ffull},
};

TEST(TierTest, BestStaysByteIdenticalToGoldenHashes)
{
    ScopedTierEnv env(nullptr);
    for (const auto& c : kGolden) {
        EXPECT_EQ(compile_hash(c.kind, c.n, c.density, c.seed,
                               core::CompileTier::Best),
                  c.hash)
            << "arch " << static_cast<int>(c.kind) << " n=" << c.n;
        // Auto with no PERMUQ_TIER is the same thing.
        EXPECT_EQ(compile_hash(c.kind, c.n, c.density, c.seed,
                               core::CompileTier::Auto),
                  c.hash);
    }
}

TEST(TierTest, AutoResolvesEnvironment)
{
    {
        ScopedTierEnv env("fast");
        EXPECT_EQ(core::resolve_tier(core::CompileTier::Auto),
                  core::CompileTier::Fast);
        // Explicit options win over the environment.
        EXPECT_EQ(core::resolve_tier(core::CompileTier::Best),
                  core::CompileTier::Best);
    }
    {
        ScopedTierEnv env("balanced");
        EXPECT_EQ(core::resolve_tier(core::CompileTier::Auto),
                  core::CompileTier::Balanced);
    }
    {
        // Unknown values fall back to the historical default.
        ScopedTierEnv env("ludicrous");
        EXPECT_EQ(core::resolve_tier(core::CompileTier::Auto),
                  core::CompileTier::Best);
    }
    {
        ScopedTierEnv env(nullptr);
        EXPECT_EQ(core::resolve_tier(core::CompileTier::Auto),
                  core::CompileTier::Best);
    }
}

TEST(TierTest, AutoEnvCompilesLikeExplicitTier)
{
    const auto& c = kGolden[2];
    const std::uint64_t fast = compile_hash(c.kind, c.n, c.density,
                                            c.seed,
                                            core::CompileTier::Fast);
    ScopedTierEnv env("fast");
    EXPECT_EQ(compile_hash(c.kind, c.n, c.density, c.seed,
                           core::CompileTier::Auto),
              fast);
}

TEST(TierTest, FastAndBalancedInvariantUnderThreadCount)
{
    int saved = common::num_threads();
    for (core::CompileTier tier :
         {core::CompileTier::Fast, core::CompileTier::Balanced}) {
        for (const auto& c : kGolden) {
            common::set_num_threads(1);
            std::uint64_t h1 =
                compile_hash(c.kind, c.n, c.density, c.seed, tier);
            common::set_num_threads(4);
            std::uint64_t h4 =
                compile_hash(c.kind, c.n, c.density, c.seed, tier);
            EXPECT_EQ(h1, h4)
                << core::tier_name(tier) << " arch "
                << static_cast<int>(c.kind) << " n=" << c.n;
        }
    }
    common::set_num_threads(saved);
}

TEST(TierTest, FastPlansVerifyOnEveryRegularTopology)
{
    const arch::ArchKind kinds[] = {
        arch::ArchKind::Line,    arch::ArchKind::Grid,
        arch::ArchKind::Sycamore, arch::ArchKind::HeavyHex,
        arch::ArchKind::Hexagon, arch::ArchKind::Lattice3D,
    };
    for (arch::ArchKind kind : kinds) {
        auto device = arch::smallest_arch(kind, 32);
        auto problem = problem::random_graph(32, 0.3, 23);
        core::CompilerOptions options;
        options.tier = core::CompileTier::Fast;
        auto result = core::compile(device, problem, options);
        EXPECT_EQ(result.selected, "fast")
            << "arch " << static_cast<int>(kind);
        ASSERT_NO_THROW(
            circuit::expect_valid(result.circuit, device, problem));
        auto report =
            verify::check_symbolic(device, problem, result.circuit);
        EXPECT_TRUE(report.ok)
            << "arch " << static_cast<int>(kind) << ": "
            << report.summary();
    }
    // The fixed 27-qubit Mumbai device is heavy-hex, so it takes the
    // fast path too.
    auto mumbai = arch::make_mumbai();
    auto problem = problem::random_graph(20, 0.3, 31);
    core::CompilerOptions options;
    options.tier = core::CompileTier::Fast;
    auto result = core::compile(mumbai, problem, options);
    EXPECT_EQ(result.selected, "fast");
    EXPECT_TRUE(verify::check_symbolic(mumbai, problem, result.circuit).ok);
}

TEST(TierTest, FastFallsBackToBalancedOnCustomDevices)
{
    std::vector<VertexPair> couplers;
    for (std::int32_t i = 0; i < 12; ++i)
        couplers.emplace_back(i, (i + 1) % 12);
    couplers.emplace_back(0, 6);
    couplers.emplace_back(3, 9);
    auto device = arch::make_custom(12, couplers, "ring-with-chords");
    auto problem = problem::random_graph(12, 0.4, 43);

    auto& fallbacks =
        telemetry::counter("permuq.compile.fast.fallback");
    const bool was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    const std::int64_t before = fallbacks.value();
    core::CompilerOptions options;
    options.tier = core::CompileTier::Fast;
    auto result = core::compile(device, problem, options);
    EXPECT_NE(result.selected, "fast");
    EXPECT_EQ(fallbacks.value(), before + 1);
    telemetry::set_enabled(was_enabled);
    ASSERT_NO_THROW(
        circuit::expect_valid(result.circuit, device, problem));
    EXPECT_TRUE(verify::check_symbolic(device, problem, result.circuit).ok);

    // Same circuit as asking for balanced directly.
    options.tier = core::CompileTier::Balanced;
    auto balanced = core::compile(device, problem, options);
    EXPECT_EQ(circuit_hash(result.circuit),
              circuit_hash(balanced.circuit));
}

TEST(TierTest, FastDepthWithinQualityBound)
{
    // The acceptance bound the bench gates enforce at 256q, held here
    // at a CI-friendly size: fast depth <= 1.5x best depth.
    for (arch::ArchKind kind :
         {arch::ArchKind::Grid, arch::ArchKind::Sycamore}) {
        auto device = arch::smallest_arch(kind, 64);
        auto problem = problem::random_regular_graph(64, 3, 12345);
        core::CompilerOptions options;
        options.tier = core::CompileTier::Fast;
        auto fast = core::compile(device, problem, options);
        options.tier = core::CompileTier::Best;
        auto best = core::compile(device, problem, options);
        EXPECT_LE(fast.metrics.depth, 1.5 * best.metrics.depth)
            << "arch " << static_cast<int>(kind);
    }
}

TEST(TierTest, VecopsKernelsBitIdenticalAcrossTiers)
{
    if (!vecops::vec_compiled_in() ||
        vecops::detected_vec_tier() == vecops::VecTier::Scalar)
        GTEST_SKIP() << "AVX2 tier unavailable on this host";
    const auto& scalar = vecops::scalar_table();
    const auto& avx2 = vecops::avx2_table();

    // Deterministic mixed data, lengths straddling vector widths.
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (std::size_t n : {0u, 1u, 7u, 16u, 33u, 255u, 1024u}) {
        std::vector<std::uint16_t> u16(n);
        std::vector<std::int32_t> acc_s(n), acc_v(n), scores(n);
        std::vector<std::uint8_t> skip(n);
        for (std::size_t i = 0; i < n; ++i) {
            u16[i] = static_cast<std::uint16_t>(next());
            acc_s[i] = acc_v[i] = static_cast<std::int32_t>(next() & 0xffff);
            scores[i] = static_cast<std::int32_t>(next() & 0xfffff);
            skip[i] = static_cast<std::uint8_t>(next() & 1);
        }
        const std::uint16_t sentinel = 0xffff;
        if (n > 2)
            u16[n / 2] = sentinel;

        std::int64_t cnt_s = -1, cnt_v = -1;
        EXPECT_EQ(scalar.sum_u16(u16.data(), n, sentinel, &cnt_s),
                  avx2.sum_u16(u16.data(), n, sentinel, &cnt_v));
        EXPECT_EQ(cnt_s, cnt_v);

        scalar.add_u16_to_i32(acc_s.data(), u16.data(), n);
        avx2.add_u16_to_i32(acc_v.data(), u16.data(), n);
        EXPECT_EQ(acc_s, acc_v) << "n=" << n;

        EXPECT_EQ(scalar.argmin_masked_i32(scores.data(), skip.data(), n),
                  avx2.argmin_masked_i32(scores.data(), skip.data(), n))
            << "n=" << n;
        // All-masked input: both report no winner.
        std::fill(skip.begin(), skip.end(), std::uint8_t{1});
        EXPECT_EQ(scalar.argmin_masked_i32(scores.data(), skip.data(), n),
                  -1);
        EXPECT_EQ(avx2.argmin_masked_i32(scores.data(), skip.data(), n),
                  -1);
    }
}

TEST(TierTest, CompileHashIdenticalAcrossVecTiers)
{
    if (!vecops::vec_compiled_in() ||
        vecops::detected_vec_tier() == vecops::VecTier::Scalar)
        GTEST_SKIP() << "AVX2 tier unavailable on this host";
    const vecops::VecTier saved = vecops::active_vec_tier();
    for (core::CompileTier tier :
         {core::CompileTier::Fast, core::CompileTier::Best}) {
        vecops::set_vec_tier(vecops::VecTier::Scalar);
        std::uint64_t hs = compile_hash(arch::ArchKind::Grid, 36, 0.4,
                                        11, tier);
        vecops::set_vec_tier(vecops::VecTier::Avx2);
        std::uint64_t hv = compile_hash(arch::ArchKind::Grid, 36, 0.4,
                                        11, tier);
        EXPECT_EQ(hs, hv) << core::tier_name(tier);
    }
    vecops::set_vec_tier(saved);
}

TEST(TierTest, ReproducerRoundTripsTier)
{
    verify::FuzzConfig config;
    config.arch = "grid";
    config.num_vertices = 6;
    config.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
    config.tier = "fast";
    const auto text =
        verify::serialize_reproducer(config, verify::CheckResult{});

    verify::FuzzConfig parsed;
    std::istringstream in(text);
    std::string error;
    ASSERT_TRUE(verify::parse_reproducer(in, parsed, &error)) << error;
    EXPECT_EQ(parsed.tier, "fast");
    EXPECT_TRUE(verify::run_config(parsed).ok);

    // Unknown tiers are rejected loudly, not defaulted.
    config.tier = "warp";
    const auto bad =
        verify::serialize_reproducer(config, verify::CheckResult{});
    std::istringstream bad_in(bad);
    EXPECT_FALSE(verify::parse_reproducer(bad_in, parsed, &error));
    EXPECT_NE(error.find("tier"), std::string::npos) << error;
}

} // namespace
} // namespace permuq
