/**
 * @file
 * Unit tests for the common utilities: deterministic RNG, statistics,
 * table formatting, and error helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace permuq {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Xoshiro256 rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000003ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(RngTest, NextBelowIsRoughlyUniform)
{
    Xoshiro256 rng(11);
    const int buckets = 8, samples = 80000;
    std::vector<int> histogram(buckets, 0);
    for (int i = 0; i < samples; ++i)
        ++histogram[static_cast<std::size_t>(rng.next_below(buckets))];
    for (int count : histogram) {
        EXPECT_GT(count, samples / buckets * 0.9);
        EXPECT_LT(count, samples / buckets * 1.1);
    }
}

TEST(RngTest, NextIntInclusiveBounds)
{
    Xoshiro256 rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.next_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments)
{
    Xoshiro256 rng(13);
    const int samples = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < samples; ++i) {
        double g = rng.next_gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / samples, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / samples, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation)
{
    Xoshiro256 rng(5);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[static_cast<std::size_t>(i)] = i;
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(VertexPairTest, NormalizesOrder)
{
    VertexPair p(5, 2), q(2, 5);
    EXPECT_EQ(p, q);
    EXPECT_EQ(p.a, 2);
    EXPECT_EQ(p.b, 5);
    EXPECT_EQ(VertexPairHash{}(p), VertexPairHash{}(q));
}

TEST(StatsTest, MeanAndStddev)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(stddev({7.0}), 0.0);
}

TEST(StatsTest, Geomean)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_THROW(geomean({1.0, -1.0}), FatalError);
    EXPECT_THROW(mean({}), FatalError);
}

TEST(StatsTest, MedianOddEvenAndSingleton)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
    EXPECT_THROW(median({}), FatalError);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
    // Rank 0.95 * 4 = 3.8 interpolates between 40 and 50.
    EXPECT_NEAR(percentile(xs, 95.0), 48.0, 1e-12);
    // n = 1: every percentile is the sample itself.
    EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
    EXPECT_THROW(percentile(xs, 101.0), FatalError);
    EXPECT_THROW(percentile({}, 50.0), FatalError);
}

TEST(TableTest, AlignsColumns)
{
    Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer-name", "2.50"});
    auto s = t.to_string();
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    // Every line has the same width.
    std::size_t first_nl = s.find('\n');
    std::size_t width = first_nl;
    for (std::size_t pos = 0; pos < s.size();) {
        std::size_t nl = s.find('\n', pos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(TableTest, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), FatalError);
}

TEST(TableTest, NumericCells)
{
    EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
    EXPECT_EQ(Table::cell(static_cast<long long>(42)), "42");
}

TEST(ErrorTest, HelpersThrowTheRightTypes)
{
    EXPECT_THROW(fatal_unless(false, "x"), FatalError);
    EXPECT_THROW(panic_unless(false, "x"), PanicError);
    EXPECT_NO_THROW(fatal_unless(true, "x"));
    EXPECT_NO_THROW(panic_unless(true, "x"));
}

} // namespace
} // namespace permuq
