/**
 * @file
 * Robustness of the permuqd wire protocol (src/service/protocol.h):
 *
 *  - frames and payloads round-trip exactly, at any feed chunking;
 *  - every malformed input — truncated frame, oversized length
 *    prefix, bad version, garbage JSON, unknown keys, deep nesting,
 *    mid-frame disconnect — yields a *typed* error frame or a clean
 *    connection close, never a crash or a hang;
 *  - a live server survives all of the above on one connection while
 *    still serving correct responses on the next (and, for intra-frame
 *    errors, on the *same* connection);
 *  - a 500+ stream mutation sweep (the in-process twin of
 *    `permuq-fuzz --protocol`) leaves the codec standing.
 */
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "service/client.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/server.h"

namespace permuq::service {
namespace {

// ------------------------------------------------------------ framing

TEST(ServiceProtocol, FrameRoundTripSingleAndChunked)
{
    const std::string payload = "{\"v\":1,\"id\":7,\"type\":\"ping\"}";
    const std::string frame = encode_frame(payload);
    ASSERT_EQ(frame.size(), payload.size() + 4);

    // Whole-frame feed.
    {
        FrameDecoder decoder;
        decoder.feed(frame.data(), frame.size());
        std::string out, error;
        ASSERT_EQ(decoder.next(out, error), FrameDecoder::Status::Frame);
        EXPECT_EQ(out, payload);
        EXPECT_EQ(decoder.next(out, error),
                  FrameDecoder::Status::NeedMore);
        EXPECT_EQ(decoder.buffered_bytes(), 0u);
    }

    // Byte-at-a-time feed must produce the identical payload.
    {
        FrameDecoder decoder;
        std::string out, error;
        for (std::size_t i = 0; i < frame.size(); ++i) {
            decoder.feed(frame.data() + i, 1);
            if (i + 1 < frame.size())
                ASSERT_EQ(decoder.next(out, error),
                          FrameDecoder::Status::NeedMore);
        }
        ASSERT_EQ(decoder.next(out, error), FrameDecoder::Status::Frame);
        EXPECT_EQ(out, payload);
    }

    // Several frames in one buffer drain in order.
    {
        FrameDecoder decoder;
        std::string all;
        for (int k = 0; k < 3; ++k)
            all += encode_frame(payload + std::to_string(k));
        decoder.feed(all.data(), all.size());
        std::string out, error;
        for (int k = 0; k < 3; ++k) {
            ASSERT_EQ(decoder.next(out, error),
                      FrameDecoder::Status::Frame);
            EXPECT_EQ(out, payload + std::to_string(k));
        }
        EXPECT_EQ(decoder.next(out, error),
                  FrameDecoder::Status::NeedMore);
    }
}

TEST(ServiceProtocol, TruncatedFrameIsCleanNeedMore)
{
    // A frame cut anywhere leaves the decoder waiting, with the
    // orphan bytes visible (the server reads buffered_bytes() > 0 at
    // EOF as "peer died mid-frame" and just closes).
    const std::string frame =
        encode_frame("{\"v\":1,\"id\":1,\"type\":\"ping\"}");
    for (std::size_t cut = 1; cut < frame.size(); ++cut) {
        FrameDecoder decoder;
        decoder.feed(frame.data(), cut);
        std::string out, error;
        EXPECT_EQ(decoder.next(out, error),
                  FrameDecoder::Status::NeedMore);
        EXPECT_EQ(decoder.buffered_bytes(), cut);
    }
}

TEST(ServiceProtocol, OversizedPrefixPoisonsTheDecoder)
{
    FrameDecoder decoder;
    const std::uint32_t huge =
        static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
    const char prefix[4] = {static_cast<char>(huge >> 24),
                            static_cast<char>(huge >> 16),
                            static_cast<char>(huge >> 8),
                            static_cast<char>(huge)};
    decoder.feed(prefix, 4);
    std::string out, error;
    EXPECT_EQ(decoder.next(out, error), FrameDecoder::Status::Error);
    EXPECT_NE(error.find("exceeds"), std::string::npos);
    // Poisoned: even a later well-formed frame is refused.
    const std::string good = encode_frame("{\"v\":1}");
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(out, error), FrameDecoder::Status::Error);
}

// ----------------------------------------------------------- requests

TEST(ServiceProtocol, RequestPayloadRoundTrip)
{
    Request request;
    request.id = 42;
    request.arch = "sycamore";
    request.problem_n = 20;
    request.has_edges = true;
    request.edges = {{0, 1}, {1, 2}, {2, 19}};
    request.tier = "balanced";
    request.alpha = 0.25;
    request.crosstalk = true;
    request.shard = 2;
    request.shard_margin = 1;
    request.full_qaoa = true;

    Request parsed;
    ErrorKind kind;
    std::string message;
    ASSERT_TRUE(parse_request(build_request_payload(request), parsed,
                              kind, message))
        << message;
    EXPECT_EQ(parsed.id, 42);
    EXPECT_EQ(parsed.arch, "sycamore");
    EXPECT_EQ(parsed.problem_n, 20);
    ASSERT_TRUE(parsed.has_edges);
    ASSERT_EQ(parsed.edges.size(), 3u);
    EXPECT_EQ(parsed.edges[2].b, 19);
    EXPECT_EQ(parsed.tier, "balanced");
    EXPECT_DOUBLE_EQ(parsed.alpha, 0.25);
    EXPECT_TRUE(parsed.crosstalk);
    EXPECT_EQ(parsed.shard, 2);
    EXPECT_EQ(parsed.shard_margin, 1);
    EXPECT_TRUE(parsed.full_qaoa);

    // Random-spec requests round-trip too.
    Request random;
    random.id = 7;
    random.problem_n = 64;
    random.density = 0.3;
    random.seed = 12345;
    random.tier = "fast";
    ASSERT_TRUE(parse_request(build_request_payload(random), parsed,
                              kind, message))
        << message;
    EXPECT_FALSE(parsed.has_edges);
    EXPECT_EQ(parsed.problem_n, 64);
    EXPECT_DOUBLE_EQ(parsed.density, 0.3);
    EXPECT_EQ(parsed.seed, 12345u);
}

TEST(ServiceProtocol, MalformedRequestsYieldTypedErrors)
{
    Request out;
    ErrorKind kind;
    std::string message;

    // Garbage JSON.
    EXPECT_FALSE(parse_request("{\"v\":1,", out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadJson);
    EXPECT_FALSE(parse_request("\x01\x02\x03", out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadJson);
    EXPECT_FALSE(parse_request("[1,2,3]", out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadJson); // top level must be an object

    // Version mismatch / missing version.
    EXPECT_FALSE(parse_request("{\"id\":1,\"type\":\"ping\"}", out,
                               kind, message));
    EXPECT_EQ(kind, ErrorKind::BadVersion);
    EXPECT_FALSE(parse_request("{\"v\":99,\"id\":1,\"type\":\"ping\"}",
                               out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadVersion);

    // Unknown keys (version-skew must fail loudly).
    EXPECT_FALSE(parse_request(
        "{\"v\":1,\"id\":1,\"type\":\"ping\",\"bogus\":true}", out,
        kind, message));
    EXPECT_EQ(kind, ErrorKind::BadRequest);
    EXPECT_NE(message.find("bogus"), std::string::npos);

    // Unknown type, bad field types, out-of-range values.
    EXPECT_FALSE(parse_request("{\"v\":1,\"id\":1,\"type\":\"hack\"}",
                               out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadRequest);
    EXPECT_FALSE(parse_request("{\"v\":1,\"id\":-3,\"type\":\"ping\"}",
                               out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadRequest);
    EXPECT_FALSE(parse_request(
        "{\"v\":1,\"id\":1,\"type\":\"compile\",\"problem\":"
        "{\"n\":4,\"edges\":[[0,9]]}}",
        out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadRequest); // endpoint exceeds n
    EXPECT_FALSE(parse_request(
        "{\"v\":1,\"id\":1,\"type\":\"compile\",\"problem\":{\"n\":4},"
        "\"options\":{\"tier\":\"warp\"}}",
        out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadRequest);

    // Duplicate keys are a parse error, not last-wins.
    EXPECT_FALSE(parse_request("{\"v\":1,\"v\":1,\"id\":1}", out, kind,
                               message));
    EXPECT_EQ(kind, ErrorKind::BadJson);

    // Nesting past the bound must be rejected, not recursed into.
    std::string bomb = "{\"v\":1,\"id\":0,\"type\":";
    bomb.append(256, '[');
    bomb += "0";
    bomb.append(256, ']');
    bomb += "}";
    EXPECT_FALSE(parse_request(bomb, out, kind, message));
    EXPECT_EQ(kind, ErrorKind::BadJson);
}

TEST(ServiceProtocol, ErrorAndResultPayloadsRoundTrip)
{
    Response response;
    std::string error;
    ASSERT_TRUE(parse_response(
        build_error_payload(9, ErrorKind::Overloaded, "queue full"),
        response, error))
        << error;
    EXPECT_EQ(response.id, 9);
    EXPECT_EQ(response.type, "error");
    EXPECT_EQ(response.error, ErrorKind::Overloaded);
    EXPECT_EQ(response.message, "queue full");

    PlanSummary summary;
    summary.tier = "fast";
    summary.selected = "fast";
    summary.depth = 39;
    summary.cx = 530;
    summary.swaps = 154;
    const std::string fragment = build_plan_fragment(
        summary, "OPENQASM 2.0;\nqreg q[4];\n", "{\"total\":1}");
    ASSERT_TRUE(parse_response(
        build_result_payload(3, true, 0.5, 1.5, fragment), response,
        error))
        << error;
    EXPECT_EQ(response.id, 3);
    EXPECT_EQ(response.type, "result");
    EXPECT_TRUE(response.cached);
    EXPECT_EQ(response.plan.tier, "fast");
    EXPECT_EQ(response.plan.depth, 39);
    EXPECT_EQ(response.qasm, "OPENQASM 2.0;\nqreg q[4];\n");
    // The wire-exact fragment is recovered byte for byte — this is
    // what the cache byte-identity assertions compare.
    EXPECT_EQ(response.fragment, fragment);
    EXPECT_EQ(response.report_json, "{\"total\":1}");
}

// --------------------------------------------------- live-server abuse

class ServiceProtocolServer : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServerOptions options;
        options.port = 0;
        options.workers = 2;
        server_ = std::make_unique<Server>(options);
        std::string error;
        ASSERT_TRUE(server_->start(error)) << error;
    }

    void TearDown() override { server_->stop(); }

    Request
    small_compile(std::int64_t id) const
    {
        Request request;
        request.id = id;
        request.problem_n = 8;
        request.density = 0.4;
        request.tier = "fast";
        return request;
    }

    std::unique_ptr<Server> server_;
};

TEST_F(ServiceProtocolServer, IntraFrameErrorsKeepTheConnectionUsable)
{
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(server_->port(), error)) << error;

    // Garbage JSON in a well-formed frame: typed error, then the same
    // connection still serves a real compile.
    ASSERT_TRUE(client.send_raw(encode_frame("not json at all"), error));
    Response response;
    ASSERT_TRUE(client.receive(response, error)) << error;
    EXPECT_EQ(response.type, "error");
    EXPECT_EQ(response.error, ErrorKind::BadJson);

    ASSERT_TRUE(client.send_raw(
        encode_frame("{\"v\":2026,\"id\":5,\"type\":\"ping\"}"),
        error));
    ASSERT_TRUE(client.receive(response, error)) << error;
    EXPECT_EQ(response.type, "error");
    EXPECT_EQ(response.error, ErrorKind::BadVersion);
    EXPECT_EQ(response.id, 5); // id recovered best-effort

    ASSERT_TRUE(client.call(small_compile(6), response, error))
        << error;
    EXPECT_EQ(response.type, "result");
}

TEST_F(ServiceProtocolServer, OversizedPrefixGetsTypedErrorThenClose)
{
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect(server_->port(), error)) << error;
    const std::uint32_t huge =
        static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
    std::string prefix;
    prefix.push_back(static_cast<char>(huge >> 24));
    prefix.push_back(static_cast<char>(huge >> 16));
    prefix.push_back(static_cast<char>(huge >> 8));
    prefix.push_back(static_cast<char>(huge));
    ASSERT_TRUE(client.send_raw(prefix, error));
    Response response;
    ASSERT_TRUE(client.receive(response, error)) << error;
    EXPECT_EQ(response.type, "error");
    EXPECT_EQ(response.error, ErrorKind::Oversized);
    // The server closes after an unrecoverable framing error.
    EXPECT_FALSE(client.receive(response, error));

    // And the next connection is unaffected.
    Client fresh;
    ASSERT_TRUE(fresh.connect(server_->port(), error)) << error;
    ASSERT_TRUE(fresh.call(small_compile(1), response, error)) << error;
    EXPECT_EQ(response.type, "result");
}

TEST_F(ServiceProtocolServer, MidFrameDisconnectIsAClosedConnection)
{
    // Send half a frame and hang up; the server must neither crash
    // nor leak the connection, and must keep serving others.
    {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(server_->port(), error)) << error;
        const std::string frame =
            encode_frame(build_request_payload(small_compile(1)));
        ASSERT_TRUE(
            client.send_raw(frame.substr(0, frame.size() / 2), error));
        client.shutdown_write();
        Response ignored;
        EXPECT_FALSE(client.receive(ignored, error)); // clean close
        client.close();
    }
    Client other;
    std::string error;
    Response response;
    ASSERT_TRUE(other.connect(server_->port(), error)) << error;
    ASSERT_TRUE(other.call(small_compile(2), response, error)) << error;
    EXPECT_EQ(response.type, "result");
}

TEST_F(ServiceProtocolServer, MutatedStreamSweep500)
{
    // The acceptance-criteria sweep: >= 500 mutated frames at a live
    // server. Every stream must end in a parseable typed error frame
    // or a clean close — and the server must still answer a fresh
    // compile afterwards. Deterministic seed.
    std::mt19937_64 rng(2026);
    auto draw = [&](std::uint64_t bound) {
        return static_cast<std::size_t>(rng() % bound);
    };
    int closes = 0, typed_errors = 0, results = 0;
    constexpr int kStreams = 100; // >= 5 mutated frames per stream
    for (int s = 0; s < kStreams; ++s) {
        Client client;
        std::string error;
        ASSERT_TRUE(client.connect(server_->port(), error)) << error;
        for (int f = 0; f < 5; ++f) {
            std::string frame = encode_frame(
                build_request_payload(small_compile(f + 1)));
            switch (draw(5)) {
            case 0: // flip bits in the payload
                for (std::size_t flips = 1 + draw(6); flips > 0;
                     --flips)
                    frame[4 + draw(frame.size() - 4)] ^=
                        static_cast<char>(1 << draw(8));
                break;
            case 1: // truncate and resynchronize (framing breaks)
                frame.resize(4 + draw(frame.size() - 4));
                break;
            case 2: // raw garbage
                frame.clear();
                for (std::size_t n = 1 + draw(64); n > 0; --n)
                    frame.push_back(static_cast<char>(rng()));
                break;
            case 3: // corrupt the length prefix
                frame[draw(4)] ^= static_cast<char>(0x80);
                break;
            default: // leave well-formed
                break;
            }
            if (!client.send_raw(frame, error))
                break; // server already closed on us — fine
        }
        client.shutdown_write();
        // Drain whatever comes back until close; every frame must
        // parse as a protocol response.
        Response response;
        std::string error2;
        while (client.receive(response, error2)) {
            if (response.type == "error")
                ++typed_errors;
            else if (response.type == "result")
                ++results;
        }
        ++closes;
    }
    // 100 streams x 5 frames = 500 mutated frames, zero crashes.
    EXPECT_EQ(closes, kStreams);
    EXPECT_GT(typed_errors, 0);
    EXPECT_GT(results, 0);

    Client survivor;
    std::string error;
    Response response;
    ASSERT_TRUE(survivor.connect(server_->port(), error)) << error;
    ASSERT_TRUE(survivor.call(small_compile(99), response, error))
        << error;
    EXPECT_EQ(response.type, "result");
}

} // namespace
} // namespace permuq::service
