/**
 * @file
 * Tests for the telemetry layer: counter/gauge/histogram correctness,
 * span nesting and timestamps, concurrent recording from the shared
 * thread pool (exercised under the TSan CI job), disabled-mode
 * zero-recording, and the JSON exports.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/log/flight_recorder.h"
#include "common/parallel.h"
#include "common/telemetry/telemetry.h"

using namespace permuq;
using namespace permuq::telemetry;

namespace {

/** Enables telemetry for one test and restores a clean slate after. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Registry::instance().reset();
        set_enabled(true);
    }

    void
    TearDown() override
    {
        set_enabled(false);
        Registry::instance().reset();
    }
};

std::vector<SpanEvent>
events_named(const std::string& name)
{
    std::vector<SpanEvent> out;
    for (const auto& ev : Registry::instance().span_events())
        if (name == ev.name)
            out.push_back(ev);
    return out;
}

} // namespace

TEST_F(TelemetryTest, CounterAccumulates)
{
    Counter& c = counter("test.counter");
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    // Same name resolves to the same counter.
    EXPECT_EQ(&counter("test.counter"), &c);
    EXPECT_NE(&counter("test.counter2"), &c);
}

TEST_F(TelemetryTest, GaugeLastWriteWins)
{
    Gauge& g = gauge("test.gauge");
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
}

TEST_F(TelemetryTest, HistogramBucketsAndPercentiles)
{
    EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
    EXPECT_EQ(Histogram::bucket_of(0.5), 0u);
    EXPECT_EQ(Histogram::bucket_of(-3.0), 0u);
    EXPECT_EQ(Histogram::bucket_of(1.0), 1u);
    EXPECT_EQ(Histogram::bucket_of(1.5), 1u);
    EXPECT_EQ(Histogram::bucket_of(2.0), 2u);
    EXPECT_EQ(Histogram::bucket_of(3.0), 2u);
    EXPECT_EQ(Histogram::bucket_of(4.0), 3u);
    EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kNumBuckets - 1);
    EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucket_bound(3), 8.0);

    Histogram& h = histogram("test.hist");
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100);
    EXPECT_DOUBLE_EQ(h.sum(), 5050.0);

    auto snap = Registry::instance().snapshot();
    const HistogramSnapshot* hs = nullptr;
    for (const auto& s : snap.histograms)
        if (s.name == "test.hist")
            hs = &s;
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, 100);
    // All 100 samples fit the reservoir, so the percentiles are exact
    // over 1..100.
    EXPECT_NEAR(hs->p50, 50.5, 1e-9);
    EXPECT_NEAR(hs->p95, 95.05, 1e-9);
    std::int64_t total = 0;
    for (const auto& [bound, n] : hs->buckets) {
        EXPECT_GT(n, 0);
        total += n;
    }
    EXPECT_EQ(total, 100);
}

TEST_F(TelemetryTest, SpanNestingDepthAndTimestamps)
{
    {
        ScopedSpan outer("outer");
        outer.arg("layer", 1);
        {
            ScopedSpan inner("inner");
            inner.arg("layer", 2);
        }
    }
    auto outer_evs = events_named("outer");
    auto inner_evs = events_named("inner");
    ASSERT_EQ(outer_evs.size(), 1u);
    ASSERT_EQ(inner_evs.size(), 1u);
    const SpanEvent& outer = outer_evs[0];
    const SpanEvent& inner = inner_evs[0];
    EXPECT_EQ(outer.depth, 0);
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(outer.tid, inner.tid);
    // The child starts no earlier and ends no later than its parent.
    EXPECT_GE(inner.start_ns, outer.start_ns);
    EXPECT_LE(inner.start_ns + inner.dur_ns,
              outer.start_ns + outer.dur_ns);
    ASSERT_EQ(outer.num_args, 1);
    EXPECT_STREQ(outer.arg_keys[0], "layer");
    EXPECT_EQ(outer.arg_values[0], 1);
}

TEST_F(TelemetryTest, SpanEventsSortedByThreadAndTime)
{
    for (int i = 0; i < 5; ++i)
        ScopedSpan span("seq");
    auto evs = Registry::instance().span_events();
    ASSERT_EQ(evs.size(), 5u);
    for (std::size_t i = 1; i < evs.size(); ++i) {
        EXPECT_EQ(evs[i].tid, evs[i - 1].tid);
        EXPECT_GE(evs[i].start_ns, evs[i - 1].start_ns);
    }
}

TEST_F(TelemetryTest, ConcurrentRecordingFromPool)
{
    constexpr std::int64_t kTasks = 64;
    constexpr std::int64_t kAddsPerTask = 1000;
    Counter& c = counter("test.concurrent.counter");
    Histogram& h = histogram("test.concurrent.hist");
    common::parallel_tasks(kTasks, [&](std::int64_t t) {
        ScopedSpan span("pool.task");
        span.arg("task", t);
        for (std::int64_t i = 0; i < kAddsPerTask; ++i) {
            c.add();
            h.record(static_cast<double>(t));
        }
    });
    EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
    EXPECT_EQ(h.count(), kTasks * kAddsPerTask);
    auto evs = events_named("pool.task");
    EXPECT_EQ(evs.size(), static_cast<std::size_t>(kTasks));
    // Every task arg shows up exactly once.
    std::set<std::int64_t> seen;
    for (const auto& ev : evs) {
        ASSERT_EQ(ev.num_args, 1);
        seen.insert(ev.arg_values[0]);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTasks));
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing)
{
    set_enabled(false);
    counter("test.disabled.counter").add(5);
    gauge("test.disabled.gauge").set(5);
    histogram("test.disabled.hist").record(5.0);
    {
        ScopedSpan span("disabled.span");
        EXPECT_FALSE(span.live());
        span.arg("ignored", 1);
    }
    EXPECT_EQ(counter("test.disabled.counter").value(), 0);
    EXPECT_EQ(gauge("test.disabled.gauge").value(), 0);
    EXPECT_EQ(histogram("test.disabled.hist").count(), 0);
    EXPECT_TRUE(events_named("disabled.span").empty());
}

TEST_F(TelemetryTest, TraceJsonHasRequiredFields)
{
    {
        ScopedSpan span("json.span");
        span.arg("k", 7);
    }
    std::string json = Registry::instance().trace_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"k\":7"), std::string::npos);
}

TEST_F(TelemetryTest, MetricsJsonContainsAllSections)
{
    counter("test.json.counter").add(3);
    gauge("test.json.gauge").set(-2);
    histogram("test.json.hist").record(4.0);
    {
        ScopedSpan span("json.metrics.span");
    }
    std::string json = Registry::instance().metrics_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.json.gauge\": -2"), std::string::npos);
    EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"json.metrics.span\""), std::string::npos);
}

TEST_F(TelemetryTest, ResetClearsValuesButKeepsNames)
{
    Counter& c = counter("test.reset.counter");
    c.add(9);
    {
        ScopedSpan span("reset.span");
    }
    Registry::instance().reset();
    EXPECT_EQ(c.value(), 0);
    EXPECT_TRUE(events_named("reset.span").empty());
    EXPECT_EQ(&counter("test.reset.counter"), &c);
}

TEST_F(TelemetryTest, PrometheusTextFormatAndLabels)
{
    counter("test.prom.counter").add(5);
    gauge("test.prom.gauge").set(-3);
    Histogram& h = histogram("test.prom.hist");
    h.record(0.5);
    h.record(3.0);
    h.record(100.0);
    Registry::instance().set_export_label("tier", "fast");
    Registry::instance().set_export_label("arch", "grid");

    const std::string text = Registry::instance().prometheus_text();
    // Names are sanitized into the permuq_ namespace with TYPE lines.
    EXPECT_NE(text.find("# TYPE permuq_test_prom_counter counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE permuq_test_prom_gauge gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE permuq_test_prom_hist histogram"),
              std::string::npos);
    // Registered labels ride on every sample.
    EXPECT_NE(text.find("tier=\"fast\""), std::string::npos);
    EXPECT_NE(text.find("arch=\"grid\""), std::string::npos);
    // Histogram closes with the +Inf bucket and count/sum rows.
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(text.find("permuq_test_prom_hist_count"),
              std::string::npos);
    EXPECT_NE(text.find("permuq_test_prom_hist_sum"),
              std::string::npos);
    // Cumulative buckets: the +Inf bucket equals the sample count.
    const auto inf_pos = text.find("le=\"+Inf\"");
    const auto value_pos = text.find("} ", inf_pos);
    ASSERT_NE(value_pos, std::string::npos);
    EXPECT_EQ(std::atoll(text.c_str() + value_pos + 2), 3);
}

/**
 * Satellite stress for the export paths (run under the TSan CI job):
 * pool workers hammer spans, counters, and histograms while another
 * worker repeatedly snapshots the Prometheus text and fires flight
 * dumps. Nothing here asserts on timing — the point is that a
 * concurrent snapshot neither tears nor races recording.
 */
TEST_F(TelemetryTest, ConcurrentExportWhileRecording)
{
    constexpr std::int64_t kWorkers = 8;
    constexpr std::int64_t kRounds = 200;
    Counter& c = counter("test.stress.counter");
    Histogram& h = histogram("test.stress.hist");
    Registry::instance().set_export_label("tier", "stress");

    const std::string dump_path =
        ::testing::TempDir() + "permuq_stress_flight.json";
    std::atomic<std::int64_t> exports{0};
    common::parallel_tasks(kWorkers + 1, [&](std::int64_t t) {
        if (t == kWorkers) {
            // Exporter: snapshot everything while the others write.
            for (int i = 0; i < 20; ++i) {
                const std::string text =
                    Registry::instance().prometheus_text();
                EXPECT_NE(text.find("permuq_"), std::string::npos);
                EXPECT_TRUE(flight::dump(dump_path.c_str()));
                exports.fetch_add(1, std::memory_order_relaxed);
            }
            return;
        }
        for (std::int64_t i = 0; i < kRounds; ++i) {
            ScopedSpan span("stress.task");
            span.arg("worker", t);
            c.add();
            h.record(static_cast<double>(i));
            flight::note(flight::Kind::Note, "stress.note",
                         "concurrent writer", t);
        }
    });
    std::remove(dump_path.c_str());

    EXPECT_EQ(exports.load(), 20);
    EXPECT_EQ(c.value(), kWorkers * kRounds);
    EXPECT_EQ(h.count(), kWorkers * kRounds);
    // A final quiescent export still parses and carries the labels.
    const std::string text = Registry::instance().prometheus_text();
    EXPECT_NE(text.find("tier=\"stress\""), std::string::npos);
    EXPECT_NE(text.find("permuq_test_stress_counter"),
              std::string::npos);
}

TEST(TelemetryLogTest, LevelsParseAndFilter)
{
    LogLevel level;
    EXPECT_TRUE(parse_log_level("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parse_log_level("off", level));
    EXPECT_EQ(level, LogLevel::Off);
    EXPECT_FALSE(parse_log_level("verbose", level));

    LogLevel before = log_level();
    set_log_level(LogLevel::Error);
    EXPECT_EQ(log_level(), LogLevel::Error);
    log(LogLevel::Debug, "filtered out");
    log(LogLevel::Error, "printed to stderr");
    set_log_level(before);
}
