/**
 * @file
 * Tests of the comparator compilers: every baseline must emit valid
 * circuits, and the exact baselines must be exact.
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "baselines/baselines.h"
#include "baselines/router_util.h"
#include "circuit/metrics.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "solver/astar.h"

namespace permuq::baselines {
namespace {

struct BaselineCase
{
    arch::ArchKind kind;
    std::int32_t n;
    double density;
};

class AllBaselinesTest : public ::testing::TestWithParam<BaselineCase>
{
};

TEST_P(AllBaselinesTest, EmitValidCircuits)
{
    auto c = GetParam();
    auto device = arch::smallest_arch(c.kind, c.n);
    auto problem = problem::random_graph(c.n, c.density, 53);
    for (const auto& result :
         {greedy_only(device, problem), ata_only(device, problem),
          paulihedral_like(device, problem), qaim_like(device, problem),
          tqan_like(device, problem)}) {
        SCOPED_TRACE(result.name);
        circuit::expect_valid(result.circuit, device, problem);
        EXPECT_EQ(result.metrics.compute_gates, problem.num_edges());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllBaselinesTest,
    ::testing::Values(BaselineCase{arch::ArchKind::HeavyHex, 32, 0.3},
                      BaselineCase{arch::ArchKind::HeavyHex, 64, 0.5},
                      BaselineCase{arch::ArchKind::Sycamore, 32, 0.3},
                      BaselineCase{arch::ArchKind::Grid, 36, 0.4},
                      BaselineCase{arch::ArchKind::Hexagon, 36, 0.3}));

TEST(AtaOnlyTest, DenseCliqueMatchesPatternDepth)
{
    auto device = arch::make_grid(4, 4);
    auto problem = graph::Graph::clique(16);
    auto result = ata_only(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    // Full clique replay ~ 2.1 n cycles on the grid.
    EXPECT_LE(result.metrics.depth, 40);
}

TEST(AtaOnlyTest, SparseStopsEarly)
{
    auto device = arch::make_grid(5, 5);
    auto sparse = problem::random_graph(25, 0.1, 3);
    auto dense = problem::random_graph(25, 0.8, 3);
    auto a = ata_only(device, sparse);
    auto b = ata_only(device, dense);
    EXPECT_LE(a.metrics.depth, b.metrics.depth);
}

TEST(PaulihedralTest, LayersCoverEverything)
{
    auto device = arch::make_heavy_hex(3, 7);
    auto problem = problem::random_graph(20, 0.5, 9);
    auto result = paulihedral_like(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(QaimTest, SmartPlacementBeatsIdentityRouting)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::random_graph(40, 0.15, 61);
    auto qaim = qaim_like(device, problem);
    RouterConfig config;
    auto identity_routed = route_frontier(
        device, problem, circuit::Mapping(40, 64), config);
    auto identity_metrics = circuit::compute_metrics(identity_routed);
    EXPECT_LE(qaim.metrics.cx_count, identity_metrics.cx_count * 5 / 4);
}

TEST(TqanTest, AnnealedPlacementReducesDistance)
{
    auto device = arch::make_grid(8, 8);
    auto problem = problem::random_graph(24, 0.2, 67);
    auto annealed = annealed_placement(device, problem, 5);
    circuit::Mapping identity(24, 64);
    auto total = [&](const circuit::Mapping& m) {
        std::int64_t sum = 0;
        for (const auto& e : problem.edges())
            sum += device.distance(m.physical_of(e.a),
                                   m.physical_of(e.b));
        return sum;
    };
    EXPECT_LT(total(annealed), total(identity));
}

TEST(TqanTest, UnifiesGatesAndSwaps)
{
    auto device = arch::make_heavy_hex(3, 7);
    auto problem = problem::random_graph(20, 0.4, 71);
    auto with = tqan_like(device, problem);
    EXPECT_GT(with.metrics.merged_pairs, 0);
}

TEST(SabreTest, ValidAcrossArchitectures)
{
    for (auto kind : {arch::ArchKind::HeavyHex, arch::ArchKind::Sycamore,
                      arch::ArchKind::Grid}) {
        auto device = arch::smallest_arch(kind, 32);
        auto problem = problem::random_graph(32, 0.3, 83);
        auto result = sabre_like(device, problem);
        SCOPED_TRACE(arch::to_string(kind));
        circuit::expect_valid(result.circuit, device, problem);
        EXPECT_EQ(result.metrics.compute_gates, problem.num_edges());
    }
}

TEST(SabreTest, FixedOrderCostsDepthVsPermutable)
{
    // The premise of the paper (Fig 4): a fixed-order router cannot
    // exploit commutativity, so it compiles deeper circuits.
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 48);
    auto problem = problem::random_graph(48, 0.4, 89);
    auto sabre = sabre_like(device, problem);
    auto ours = core::compile(device, problem);
    EXPECT_GT(sabre.metrics.depth, ours.metrics.depth);
}

TEST(SabreTest, CompliantFrontNeedsNoSwaps)
{
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 1);
    problem.add_edge(2, 3);
    auto result = sabre_like(device, problem);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_EQ(result.circuit.num_swaps(), 0);
}

TEST(OlsqTest, IsDepthOptimalOnSmallInstances)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        auto device = arch::make_grid(2, 3);
        auto problem = problem::random_graph(6, 0.4, seed);
        if (problem.num_edges() == 0)
            continue;
        auto result = olsq_like(device, problem);
        ASSERT_TRUE(result.complete);
        circuit::expect_valid(result.circuit, device, problem);
        // Cross-check against the solver directly.
        circuit::Mapping initial(6, 6);
        auto direct =
            solver::solve_depth_optimal(device, problem, initial);
        ASSERT_TRUE(direct.solved);
        EXPECT_EQ(result.metrics.depth, direct.depth);
    }
}

TEST(OlsqTest, BudgetFallbackIsMarkedIncomplete)
{
    auto device = arch::make_grid(2, 4);
    auto problem = graph::Graph::clique(8);
    auto result = olsq_like(device, problem, /*max_expansions=*/5);
    EXPECT_FALSE(result.complete);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(SatmapTest, MinimizesSwapCount)
{
    // A single far gate on a line needs exactly d-1 = 2 swaps.
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 3);
    auto result = satmap_like(device, problem);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.circuit.num_swaps(), 2);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(SatmapTest, ZeroSwapsWhenCompliant)
{
    auto device = arch::make_grid(2, 2);
    graph::Graph problem(4);
    problem.add_edge(0, 1);
    problem.add_edge(2, 3);
    problem.add_edge(0, 2);
    auto result = satmap_like(device, problem);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.circuit.num_swaps(), 0);
}

TEST(SatmapTest, NeverMoreSwapsThanHeuristics)
{
    for (std::uint64_t seed = 20; seed < 24; ++seed) {
        auto device = arch::make_grid(2, 3);
        auto problem = problem::random_graph(6, 0.5, seed);
        if (problem.num_edges() == 0)
            continue;
        auto exact = satmap_like(device, problem);
        ASSERT_TRUE(exact.complete);
        auto ours = core::compile(device, problem);
        EXPECT_LE(exact.circuit.num_swaps(), ours.circuit.num_swaps());
    }
}

} // namespace
} // namespace permuq::baselines
