/**
 * @file
 * Tests of the depth-optimal A* solver (paper §4): admissible cost
 * function, optimal depths on the instances the paper solves, and
 * agreement between the pruned and exhaustive searches.
 */
#include <gtest/gtest.h>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "problem/generators.h"
#include "solver/astar.h"

namespace permuq::solver {
namespace {

TEST(PairCostTest, MatchesPaperExample)
{
    // Paper Fig 15: deg(q1)=3, deg(q4)=2, d=3 -> cost 4 at x=1.
    EXPECT_EQ(pair_cost(3, 2, 3), 4);
}

TEST(PairCostTest, AdjacentPairIsMaxDegree)
{
    EXPECT_EQ(pair_cost(1, 1, 1), 1);
    EXPECT_EQ(pair_cost(4, 2, 1), 4);
}

TEST(PairCostTest, GrowsWithDistance)
{
    for (std::int32_t d = 1; d < 8; ++d)
        EXPECT_LE(pair_cost(1, 1, d), pair_cost(1, 1, d + 1));
    // Distance d alone forces at least ceil((d-1)/2) + 1 cycles.
    EXPECT_EQ(pair_cost(1, 1, 5), 3);
}

/** The paper's headline discovery: line cliques need 2n-2 cycles. */
class LineCliqueTest : public ::testing::TestWithParam<std::int32_t>
{
};

TEST_P(LineCliqueTest, OptimalDepthIsTwoNMinusTwo)
{
    std::int32_t n = GetParam();
    auto device = arch::make_line(n);
    auto problem = graph::Graph::clique(n);
    circuit::Mapping initial(n, n);
    auto result = solve_depth_optimal(device, problem, initial);
    ASSERT_TRUE(result.solved);
    EXPECT_EQ(result.depth, n == 2 ? 1 : 2 * n - 2);
    circuit::expect_valid(result.circuit, device, problem);
    EXPECT_EQ(result.circuit.depth(), result.depth);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LineCliqueTest,
                         ::testing::Values(2, 3, 4, 5));

TEST(SolverTest, BipartiteTwoByThree)
{
    // 2x3 grid, bipartite all-to-all between the rows: 9 cross gates.
    auto device = arch::make_grid(2, 3);
    graph::Graph problem(6);
    for (std::int32_t a = 0; a < 3; ++a)
        for (std::int32_t b = 3; b < 6; ++b)
            problem.add_edge(a, b);
    circuit::Mapping initial(6, 6);
    auto result = solve_depth_optimal(device, problem, initial);
    ASSERT_TRUE(result.solved);
    // Fig 8: three computation cycles with two swap cycles in between.
    EXPECT_EQ(result.depth, 5);
    circuit::expect_valid(result.circuit, device, problem);
}

TEST(SolverTest, AlreadyCompliantCircuitNeedsNoSwaps)
{
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 1);
    problem.add_edge(2, 3);
    circuit::Mapping initial(4, 4);
    auto result = solve_depth_optimal(device, problem, initial);
    ASSERT_TRUE(result.solved);
    EXPECT_EQ(result.depth, 1);
    EXPECT_EQ(result.circuit.num_swaps(), 0);
}

TEST(SolverTest, SingleFarGate)
{
    // One gate between the ends of a 4-line: 3 swaps can be split, so
    // depth = 1 + ceil((d-1)/2) with d=3 -> 2 wait... pair_cost(1,1,3)=2.
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 3);
    circuit::Mapping initial(4, 4);
    auto result = solve_depth_optimal(device, problem, initial);
    ASSERT_TRUE(result.solved);
    // Both endpoints can move one step in cycle 1 (distance 3 -> 1),
    // gate fires in cycle 2.
    EXPECT_EQ(result.depth, 2);
}

TEST(SolverTest, PrunedMatchesExhaustiveOnRandomInstances)
{
    // The gate-idling dominance pruning must not change the optimum.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        auto device = arch::make_line(4);
        auto problem = problem::random_graph(4, 0.6, seed);
        if (problem.num_edges() == 0)
            continue;
        circuit::Mapping initial(4, 4);
        SolverOptions pruned;
        SolverOptions exhaustive;
        exhaustive.force_maximal_gates = false;
        exhaustive.prune_dead_swaps = false;
        auto a = solve_depth_optimal(device, problem, initial, pruned);
        auto b = solve_depth_optimal(device, problem, initial, exhaustive);
        ASSERT_TRUE(a.solved && b.solved);
        EXPECT_EQ(a.depth, b.depth) << "seed " << seed;
    }
}

TEST(SolverTest, GridInstanceMatchesExhaustive)
{
    auto device = arch::make_grid(2, 2);
    auto problem = graph::Graph::clique(4);
    circuit::Mapping initial(4, 4);
    SolverOptions exhaustive;
    exhaustive.force_maximal_gates = false;
    auto a = solve_depth_optimal(device, problem, initial);
    auto b = solve_depth_optimal(device, problem, initial, exhaustive);
    ASSERT_TRUE(a.solved && b.solved);
    EXPECT_EQ(a.depth, b.depth);
}

TEST(SolverTest, HeuristicIsAdmissibleAtRoot)
{
    // h(root) <= optimal depth on a batch of random instances.
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
        auto device = arch::make_line(5);
        auto problem = problem::random_graph(5, 0.5, seed);
        if (problem.num_edges() == 0)
            continue;
        circuit::Mapping initial(5, 5);
        auto result = solve_depth_optimal(device, problem, initial);
        ASSERT_TRUE(result.solved);
        // Root h = max pair cost over edges.
        Cycle h = 0;
        std::vector<std::int32_t> deg(5, 0);
        for (const auto& e : problem.edges()) {
            ++deg[static_cast<std::size_t>(e.a)];
            ++deg[static_cast<std::size_t>(e.b)];
        }
        for (const auto& e : problem.edges()) {
            h = std::max(h, pair_cost(deg[static_cast<std::size_t>(e.a)],
                                      deg[static_cast<std::size_t>(e.b)],
                                      device.distance(e.a, e.b)));
        }
        EXPECT_LE(h, result.depth);
    }
}

TEST(SolverTest, BudgetExhaustionReportsUnsolved)
{
    auto device = arch::make_grid(2, 3);
    auto problem = graph::Graph::clique(6);
    circuit::Mapping initial(6, 6);
    SolverOptions options;
    options.max_expansions = 3;
    auto result = solve_depth_optimal(device, problem, initial, options);
    EXPECT_FALSE(result.solved);
    EXPECT_LE(result.expansions, 4);
}

TEST(SolverTest, RejectsOversizedInstances)
{
    auto device = arch::make_line(17);
    auto problem = graph::Graph::clique(17);
    circuit::Mapping initial(17, 17);
    EXPECT_THROW(solve_depth_optimal(device, problem, initial),
                 FatalError);
}

} // namespace
} // namespace permuq::solver
