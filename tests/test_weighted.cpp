/**
 * @file
 * Tests of weighted MaxCut support: generator invariants, the weighted
 * single-edge analytic formula, unit-weight equivalence with the
 * unweighted path, and noisy execution of a compiled circuit.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "problem/weighted.h"
#include "sim/qaoa.h"

namespace permuq::sim {
namespace {

TEST(WeightedProblemTest, GeneratorInvariants)
{
    auto wp = problem::weighted_random_graph(20, 0.3, 5, 0.5, 1.5);
    EXPECT_EQ(wp.weights.size(),
              static_cast<std::size_t>(wp.graph.num_edges()));
    for (double w : wp.weights) {
        EXPECT_GE(w, 0.5);
        EXPECT_LE(w, 1.5);
    }
    // Same topology as the unweighted generator with the same seed.
    auto plain = problem::random_graph(20, 0.3, 5);
    EXPECT_EQ(wp.graph.edges(), plain.edges());
}

TEST(WeightedProblemTest, CutWeightAndMaxCut)
{
    graph::Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    problem::WeightedProblem wp{std::move(g), {2.0, 3.0}};
    EXPECT_DOUBLE_EQ(cut_weight(wp, 0b010), 5.0);
    EXPECT_DOUBLE_EQ(cut_weight(wp, 0b001), 2.0);
    EXPECT_DOUBLE_EQ(max_cut_weight(wp), 5.0);
}

TEST(WeightedQaoaTest, UnitWeightsMatchUnweighted)
{
    auto plain = problem::random_graph(8, 0.4, 9);
    auto wp = problem::with_unit_weights(plain);
    QaoaAngles angles{{0.6}, {0.3}};
    EXPECT_NEAR(ideal_expectation(wp, angles),
                ideal_expectation(plain, angles), 1e-9);
}

TEST(WeightedQaoaTest, SingleEdgeAnalyticFormula)
{
    // For an isolated edge of weight w, the interaction angle scales:
    // <wC> = w(1/2 + 1/2 sin(4 beta) sin(w gamma)).
    for (double w : {0.5, 1.0, 2.0}) {
        graph::Graph g(2);
        g.add_edge(0, 1);
        problem::WeightedProblem wp{std::move(g), {w}};
        double gamma = 0.5, beta = 0.3;
        double expect =
            w * (0.5 + 0.5 * std::sin(4 * beta) * std::sin(w * gamma));
        EXPECT_NEAR(ideal_expectation(wp, {{gamma}, {beta}}), expect,
                    1e-9)
            << "w=" << w;
    }
}

TEST(WeightedQaoaTest, NoisyExecutionTracksIdeal)
{
    auto device = arch::make_mumbai();
    auto wp = problem::weighted_random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, wp.graph);
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    options.trajectories = 2;
    options.shots = 60000;
    double noisy = noisy_expectation(wp, compiled.circuit,
                                     arch::NoiseModel::ideal(device),
                                     angles, options);
    EXPECT_NEAR(noisy, ideal_expectation(wp, angles), 0.15);
}

TEST(WeightedQaoaTest, NoiseLowersWeightedExpectation)
{
    auto device = arch::make_mumbai();
    auto wp = problem::weighted_random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, wp.graph);
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    options.trajectories = 24;
    options.shots = 24000;
    auto noise = arch::NoiseModel::calibrated(device, 3, 0.05);
    double clean = noisy_expectation(wp, compiled.circuit,
                                     arch::NoiseModel::ideal(device),
                                     angles, options);
    double noisy = noisy_expectation(wp, compiled.circuit, noise,
                                     angles, options);
    EXPECT_GT(clean, noisy);
}

} // namespace
} // namespace permuq::sim
