/**
 * @file
 * Tests of the parallel simulation engine: bitwise equivalence of
 * parallel vs 1-thread execution, DiagonalBatch fusion vs the
 * per-gate reference, the CDF sampler vs the linear-scan sampler, the
 * deterministic reduction machinery, and the raised qubit cap.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <vector>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/diagonal.h"
#include "sim/hamiltonian.h"
#include "sim/qaoa.h"
#include "sim/statevector.h"

namespace permuq::sim {
namespace {

/** Restore the pool size even when an assertion fails mid-test. */
struct ThreadGuard
{
    int saved = common::num_threads();
    ~ThreadGuard() { common::set_num_threads(saved); }
};

/** A deterministic pseudo-random circuit exercising every kernel. */
void
apply_mixed_circuit(Statevector& sv, std::uint64_t seed)
{
    const std::int32_t n = sv.num_qubits();
    Xoshiro256 rng(seed);
    for (std::int32_t q = 0; q < n; ++q)
        sv.apply_h(q);
    for (int round = 0; round < 30; ++round) {
        std::int32_t q = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        std::int32_t r = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        sv.apply_rx(q, rng.next_double());
        sv.apply_rz(q, rng.next_double());
        sv.apply_y(q);
        if (q != r) {
            sv.apply_cx(q, r);
            sv.apply_rzz(q, r, rng.next_double());
            sv.apply_cphase(q, r, rng.next_double());
            sv.apply_swap(q, r);
        }
    }
}

TEST(ParallelForTest, CoversRangeExactlyOnce)
{
    ThreadGuard guard;
    common::set_num_threads(4);
    std::vector<std::atomic<int>> hits(10000);
    common::parallel_for(0, hits.size(), 16,
                         [&](std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i)
                                 hits[i].fetch_add(1);
                         });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, PropagatesExceptions)
{
    ThreadGuard guard;
    common::set_num_threads(4);
    EXPECT_THROW(common::parallel_for(0, 1 << 16, 16,
                                      [&](std::size_t b, std::size_t) {
                                          if (b > 0)
                                              throw FatalError("boom");
                                      }),
                 FatalError);
    // The pool must still be usable after an exception.
    std::atomic<int> count{0};
    common::parallel_for(0, 1 << 16, 16,
                         [&](std::size_t b, std::size_t e) {
                             count += static_cast<int>(e - b);
                         });
    EXPECT_EQ(count.load(), 1 << 16);
}

TEST(ParallelForTest, NestedCallsRunInline)
{
    ThreadGuard guard;
    common::set_num_threads(4);
    std::atomic<int> total{0};
    common::parallel_for(0, 1 << 12, 16,
                         [&](std::size_t b, std::size_t e) {
                             // Nested use must not deadlock.
                             common::parallel_for(
                                 b, e, 1, [&](std::size_t b2,
                                              std::size_t e2) {
                                     total += static_cast<int>(e2 - b2);
                                 });
                         });
    EXPECT_EQ(total.load(), 1 << 12);
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    // A sum whose result depends on association order if the slicing
    // were thread-dependent.
    std::vector<double> xs(1 << 16);
    Xoshiro256 rng(11);
    for (auto& x : xs)
        x = rng.next_double() * 1e6 - 5e5;
    auto sum_with = [&](int threads) {
        common::set_num_threads(threads);
        return common::parallel_reduce_sum<double>(
            0, xs.size(), 1 << 10, [&](std::size_t b, std::size_t e) {
                double s = 0.0;
                for (std::size_t i = b; i < e; ++i)
                    s += xs[i];
                return s;
            });
    };
    const double s1 = sum_with(1);
    const double s2 = sum_with(2);
    const double s4 = sum_with(4);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
}

TEST(ParallelSimTest, AmplitudesBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    auto run_with = [&](int threads) {
        common::set_num_threads(threads);
        Statevector sv(13);
        apply_mixed_circuit(sv, 99);
        return sv.amplitudes();
    };
    auto serial = run_with(1);
    auto parallel2 = run_with(2);
    auto parallel4 = run_with(4);
    ASSERT_EQ(serial.size(), parallel4.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].real(), parallel2[i].real()) << "i=" << i;
        ASSERT_EQ(serial[i].imag(), parallel2[i].imag()) << "i=" << i;
        ASSERT_EQ(serial[i].real(), parallel4[i].real()) << "i=" << i;
        ASSERT_EQ(serial[i].imag(), parallel4[i].imag()) << "i=" << i;
    }
}

TEST(ParallelSimTest, NormBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    auto run_with = [&](int threads) {
        common::set_num_threads(threads);
        Statevector sv(13);
        apply_mixed_circuit(sv, 5);
        return sv.norm_sq();
    };
    EXPECT_EQ(run_with(1), run_with(4));
}

TEST(ParallelSimTest, NoisyExpectationBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    auto device = arch::make_mumbai();
    auto problem = problem::random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, problem).circuit;
    auto noise = arch::NoiseModel::calibrated(device, 3, 0.02);
    QaoaAngles angles{{0.5}, {0.4}};
    NoisySimOptions options;
    options.trajectories = 8;
    options.shots = 4000;
    auto run_with = [&](int threads) {
        common::set_num_threads(threads);
        return noisy_expectation(problem, compiled, noise, angles,
                                 options);
    };
    const double e1 = run_with(1);
    const double e4 = run_with(4);
    EXPECT_EQ(e1, e4);
}

TEST(DiagonalBatchTest, MatchesPerGateReference)
{
    Statevector fused(10), reference(10);
    apply_mixed_circuit(fused, 3);
    apply_mixed_circuit(reference, 3);

    DiagonalBatch batch;
    Xoshiro256 rng(17);
    for (int k = 0; k < 20; ++k) {
        std::int32_t a = static_cast<std::int32_t>(rng.next_below(10));
        std::int32_t b = static_cast<std::int32_t>(rng.next_below(10));
        double theta = rng.next_double() * 2.0 - 1.0;
        switch (k % 4) {
          case 0:
            batch.add_rz(a, theta);
            reference.apply_rz(a, theta);
            break;
          case 1:
            batch.add_z(a);
            reference.apply_z(a);
            break;
          case 2:
            if (a == b)
                b = (a + 1) % 10;
            batch.add_rzz(a, b, theta);
            reference.apply_rzz(a, b, theta);
            break;
          default:
            if (a == b)
                b = (a + 1) % 10;
            batch.add_cphase(a, b, theta);
            reference.apply_cphase(a, b, theta);
            break;
        }
    }
    batch.apply(fused);
    for (std::size_t i = 0; i < fused.amplitudes().size(); ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    reference.amplitudes()[i].real(), 1e-10);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    reference.amplitudes()[i].imag(), 1e-10);
    }
}

TEST(DiagonalBatchTest, ZGateIncludesGlobalPhase)
{
    // Unlike RZ(pi), the batch's Z must reproduce diag(1,-1) exactly
    // (global phase included) to match apply_z amplitudes.
    Statevector fused(2), reference(2);
    fused.apply_h(0);
    reference.apply_h(0);
    DiagonalBatch batch;
    batch.add_z(0);
    batch.apply(fused);
    reference.apply_z(0);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    reference.amplitudes()[i].real(), 1e-12);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    reference.amplitudes()[i].imag(), 1e-12);
    }
}

TEST(DiagonalBatchTest, ScaleRescalesAllAngles)
{
    Statevector scaled(6), reference(6);
    apply_mixed_circuit(scaled, 21);
    apply_mixed_circuit(reference, 21);
    DiagonalBatch batch;
    batch.add_rzz(0, 3, 1.0);
    batch.add_rzz(2, 4, 1.0);
    batch.apply(scaled, -0.7);
    reference.apply_rzz(0, 3, -0.7);
    reference.apply_rzz(2, 4, -0.7);
    for (std::size_t i = 0; i < scaled.amplitudes().size(); ++i) {
        EXPECT_NEAR(scaled.amplitudes()[i].real(),
                    reference.amplitudes()[i].real(), 1e-10);
        EXPECT_NEAR(scaled.amplitudes()[i].imag(),
                    reference.amplitudes()[i].imag(), 1e-10);
    }
}

TEST(DiagonalBatchTest, BakedTableMatchesDirectApply)
{
    Statevector direct(8), baked(8);
    apply_mixed_circuit(direct, 7);
    apply_mixed_circuit(baked, 7);
    DiagonalBatch batch;
    batch.add_rzz(0, 5, 0.9);
    batch.add_rz(3, -0.4);
    batch.add_cphase(1, 6, 1.3);
    batch.apply(direct, 0.6);
    baked.apply_phase_table(batch.bake(8), 0.6);
    for (std::size_t i = 0; i < direct.amplitudes().size(); ++i) {
        EXPECT_NEAR(direct.amplitudes()[i].real(),
                    baked.amplitudes()[i].real(), 1e-12);
        EXPECT_NEAR(direct.amplitudes()[i].imag(),
                    baked.amplitudes()[i].imag(), 1e-12);
    }
}

TEST(CdfSamplerTest, MatchesLinearScanExactly)
{
    Statevector sv(10);
    apply_mixed_circuit(sv, 41);
    CdfSampler sampler(sv);
    // Same seed, two independent streams: the CDF accumulates
    // probabilities in the linear scan's order, so every draw must
    // select the identical basis state.
    Xoshiro256 rng_linear(123), rng_cdf(123);
    for (int s = 0; s < 2000; ++s)
        ASSERT_EQ(sv.sample(rng_linear), sampler.sample(rng_cdf))
            << "shot " << s;
}

TEST(CdfSamplerTest, HandlesSpikedDistribution)
{
    Statevector sv(6); // stays |000000>
    CdfSampler sampler(sv);
    Xoshiro256 rng(9);
    for (int s = 0; s < 100; ++s)
        EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(FusedNoisySimTest, FusedMatchesUnfusedExpectation)
{
    auto device = arch::make_mumbai();
    auto problem = problem::random_graph(8, 0.35, 5);
    auto compiled = core::compile(device, problem).circuit;
    auto noise = arch::NoiseModel::calibrated(device, 3, 0.02);
    QaoaAngles angles{{0.5, 0.3}, {0.4, 0.2}};
    NoisySimOptions fused, unfused;
    fused.trajectories = unfused.trajectories = 6;
    fused.shots = unfused.shots = 3000;
    fused.fuse_diagonals = true;
    unfused.fuse_diagonals = false;
    // Same seed and substreams: the only difference is phase-sweep
    // association, so the sampled expectations agree to rounding.
    double e_fused =
        noisy_expectation(problem, compiled, noise, angles, fused);
    double e_unfused =
        noisy_expectation(problem, compiled, noise, angles, unfused);
    EXPECT_NEAR(e_fused, e_unfused, 1e-6);
}

TEST(FusedTrotterTest, IsingFusedStepMatchesPerGateUnitaries)
{
    auto device = arch::make_mumbai();
    auto problem = problem::random_graph(6, 0.5, 3);
    auto compiled = core::compile(device, problem).circuit;
    SpinHamiltonian h{problem, SpinModel::Ising, 0.8};

    Statevector fused(6), reference(6);
    apply_mixed_circuit(fused, 2);
    apply_mixed_circuit(reference, 2);
    trotter_step(h, compiled, fused, 0.3);
    // Per-gate reference: exp(-i J dt ZZ) == RZZ(2 J dt).
    for (const auto& op : compiled.ops())
        if (op.kind == circuit::OpKind::Compute)
            reference.apply_rzz(op.a, op.b, 2.0 * 0.8 * 0.3);
    for (std::size_t i = 0; i < fused.amplitudes().size(); ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    reference.amplitudes()[i].real(), 1e-10);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    reference.amplitudes()[i].imag(), 1e-10);
    }
}

TEST(RngJumpTest, JumpedStreamsDiffer)
{
    Xoshiro256 a(7), b(7);
    b.jump();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(QubitCapTest, RejectsOutOfRangeCounts)
{
    EXPECT_THROW(Statevector(0), FatalError);
    EXPECT_THROW(Statevector(kMaxSimQubits + 1), FatalError);
    try {
        Statevector sv(kMaxSimQubits + 1);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("26"), std::string::npos);
    }
}

} // namespace
} // namespace permuq::sim
