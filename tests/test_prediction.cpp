/**
 * @file
 * Tests of the ATA pattern-prediction component: range detection over
 * the remaining problem graph (component finding, region merging), the
 * region-restricted tail schedule, and the closed-form depth/CX
 * estimates used to rank snapshot candidates.
 */
#include <gtest/gtest.h>

#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/mapping.h"
#include "common/error.h"
#include "core/prediction.h"
#include "graph/graph.h"

namespace permuq::core {
namespace {

TEST(DetectRegionsTest, RejectsWrongDoneBitmapSize)
{
    auto device = arch::make_line(4);
    auto problem = graph::Graph::clique(3);
    circuit::Mapping mapping(3, 4);
    std::vector<bool> done(2, false); // clique(3) has 3 edges
    EXPECT_THROW(detect_regions(device, problem, done, mapping),
                 FatalError);
}

TEST(DetectRegionsTest, AllDoneYieldsEmptyPlan)
{
    auto device = arch::make_line(4);
    auto problem = graph::Graph::clique(3);
    circuit::Mapping mapping(3, 4);
    std::vector<bool> done(3, true);
    auto plan = detect_regions(device, problem, done, mapping);
    EXPECT_TRUE(plan.regions.empty());
    EXPECT_EQ(plan.max_positions, 0);
    EXPECT_EQ(plan.total_positions, 0);
}

TEST(DetectRegionsTest, SingleComponentBoundsItsPositions)
{
    // Remaining clique on logicals {0,1,2} mapped to positions 0..2 of
    // a 6-line: one region of exactly those 3 positions.
    auto device = arch::make_line(6);
    auto problem = graph::Graph::clique(3);
    circuit::Mapping mapping(3, 6);
    std::vector<bool> done(3, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 1u);
    EXPECT_EQ(plan.max_positions, 3);
    EXPECT_EQ(plan.total_positions, 3);
}

TEST(DetectRegionsTest, DisjointComponentsStaySeparate)
{
    // Edges (0,1) and (4,5) under the identity mapping occupy the two
    // ends of a 6-line: two non-overlapping 2-position regions.
    auto device = arch::make_line(6);
    graph::Graph problem(6);
    problem.add_edge(0, 1);
    problem.add_edge(4, 5);
    circuit::Mapping mapping(6, 6);
    std::vector<bool> done(2, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 2u);
    EXPECT_EQ(plan.max_positions, 2);
    EXPECT_EQ(plan.total_positions, 4);
}

TEST(DetectRegionsTest, OverlappingRegionsMergeToFixpoint)
{
    // Components {0,2} and {1,3} interleave on the line; their bounding
    // intervals [0,2] and [1,3] overlap, so they merge into one region
    // spanning all 4 positions.
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 2);
    problem.add_edge(1, 3);
    circuit::Mapping mapping(4, 4);
    std::vector<bool> done(2, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 1u);
    EXPECT_EQ(plan.max_positions, 4);
    EXPECT_EQ(plan.total_positions, 4);
}

TEST(DetectRegionsTest, DoneBitmapSelectsTheRemainingSubgraph)
{
    // Of clique(4)'s 6 edges, finish everything touching vertex 3: the
    // remaining triangle {0,1,2} defines the region, not the whole
    // problem.
    auto device = arch::make_line(6);
    auto problem = graph::Graph::clique(4);
    circuit::Mapping mapping(4, 6);
    std::vector<bool> done(6, false);
    const auto& edges = problem.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (edges[e].a == 3 || edges[e].b == 3)
            done[e] = true;
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 1u);
    EXPECT_EQ(plan.max_positions, 3);
}

TEST(DetectRegionsTest, MappingDeterminesThePositions)
{
    // The same remaining edge under a spread-out placement bounds a
    // larger interval: logicals {0,1} at positions 0 and 3 of a line
    // yield a 4-position region.
    auto device = arch::make_line(4);
    graph::Graph problem(2);
    problem.add_edge(0, 1);
    circuit::Mapping mapping({0, 3}, 4);
    std::vector<bool> done(1, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 1u);
    EXPECT_EQ(plan.max_positions, 4);
}

TEST(TailScheduleTest, EmptyPlanYieldsEmptySchedule)
{
    auto device = arch::make_line(4);
    RegionPlan plan;
    EXPECT_EQ(tail_schedule(device, plan).num_slots(), 0);
}

TEST(TailScheduleTest, ConcatenatesPerRegionCliqueSchedules)
{
    // Two disjoint 2-position regions: each contributes its region's
    // ATA schedule; slots add up.
    auto device = arch::make_line(6);
    graph::Graph problem(6);
    problem.add_edge(0, 1);
    problem.add_edge(4, 5);
    circuit::Mapping mapping(6, 6);
    std::vector<bool> done(2, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 2u);
    auto combined = tail_schedule(device, plan);
    auto first = ata::ata_schedule(device, plan.regions[0]);
    auto second = ata::ata_schedule(device, plan.regions[1]);
    EXPECT_EQ(combined.num_slots(),
              first.num_slots() + second.num_slots());
    EXPECT_GT(combined.num_slots(), 0);
}

TEST(EstimateTest, DepthScalesWithLargestRegionOnly)
{
    // Depth constant for Line is 2.0 and disjoint regions replay in
    // parallel, so the estimate is 2.0 * max_positions.
    auto device = arch::make_line(8);
    graph::Graph problem(8);
    problem.add_edge(0, 3); // region of 4 positions
    problem.add_edge(6, 7); // region of 2 positions
    circuit::Mapping mapping(8, 8);
    std::vector<bool> done(2, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.regions.size(), 2u);
    ASSERT_EQ(plan.max_positions, 4);
    EXPECT_DOUBLE_EQ(estimate_tail_depth(device, plan), 2.0 * 4);
}

TEST(EstimateTest, PerArchitectureDepthConstants)
{
    // Same 3-position single-region plan on each architecture family;
    // only the measured per-architecture constant changes.
    const std::vector<std::pair<arch::ArchKind, double>> expected = {
        {arch::ArchKind::Line, 2.0},     {arch::ArchKind::Grid, 1.7},
        {arch::ArchKind::Sycamore, 3.6}, {arch::ArchKind::HeavyHex, 4.8},
        {arch::ArchKind::Hexagon, 4.2},
    };
    for (auto [kind, constant] : expected) {
        auto device = arch::smallest_arch(kind, 6);
        auto problem = graph::Graph::clique(3);
        circuit::Mapping mapping(3, device.num_qubits());
        std::vector<bool> done(3, false);
        auto plan = detect_regions(device, problem, done, mapping);
        ASSERT_FALSE(plan.regions.empty()) << arch::to_string(kind);
        EXPECT_DOUBLE_EQ(estimate_tail_depth(device, plan),
                         constant * plan.max_positions)
            << arch::to_string(kind);
    }
}

TEST(EstimateTest, CxCountsComputesAndQuadraticSwapTerm)
{
    // estimate_tail_cx = 2 * remaining + 3 * sum(0.5 * k^2) over the
    // region sizes k.
    auto device = arch::make_line(6);
    graph::Graph problem(6);
    problem.add_edge(0, 1);
    problem.add_edge(4, 5);
    circuit::Mapping mapping(6, 6);
    std::vector<bool> done(2, false);
    auto plan = detect_regions(device, problem, done, mapping);
    ASSERT_EQ(plan.total_positions, 4); // two regions of size 2
    double expected = 2.0 * 2 + 3.0 * (0.5 * 4 + 0.5 * 4);
    EXPECT_DOUBLE_EQ(estimate_tail_cx(device, plan, 2), expected);
}

} // namespace
} // namespace permuq::core
