/**
 * @file
 * Tests of the differential verification subsystem: both equivalence
 * tiers accept sound compilations, both flag every injected known
 * miscompile (mutation testing — a missed mutant is a checker false
 * negative), the tiers agree with each other and with the legacy
 * validator on random instances, and reproducer files round-trip.
 */
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "circuit/qasm.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "verify/equivalence.h"
#include "verify/fuzz.h"
#include "verify/mutate.h"
#include "verify/qasm_check.h"

namespace permuq::verify {
namespace {

const std::vector<arch::ArchKind> kRegularKinds = {
    arch::ArchKind::Line,     arch::ArchKind::Grid,
    arch::ArchKind::Sycamore, arch::ArchKind::HeavyHex,
    arch::ArchKind::Hexagon,
};

circuit::Circuit
compile_on(const arch::CouplingGraph& device, const graph::Graph& problem)
{
    return core::compile(device, problem).circuit;
}

TEST(TierB, AcceptsCompiledCircuitsOnEveryTopology)
{
    for (arch::ArchKind kind : kRegularKinds) {
        auto device = arch::smallest_arch(kind, 6);
        auto problem = problem::random_graph(6, 0.6, 17);
        auto circ = compile_on(device, problem);
        auto report = check_symbolic(device, problem, circ);
        EXPECT_TRUE(report.ok) << arch::to_string(kind) << ": "
                               << report.summary();
        EXPECT_EQ(report.edges_covered, problem.num_edges());
        EXPECT_EQ(report.spurious_computes, 0);
    }
}

TEST(TierB, FlagsMissingEdgeWithoutStoppingEarly)
{
    auto device = arch::make_line(4);
    graph::Graph problem(4);
    problem.add_edge(0, 1);
    problem.add_edge(1, 2);
    problem.add_edge(2, 3);
    circuit::Circuit circ(circuit::Mapping(4, 4));
    circ.add_compute(0, 1); // only one of three edges
    auto report = check_symbolic(device, problem, circ);
    EXPECT_FALSE(report.ok);
    // Both missing edges are reported, not just the first.
    EXPECT_EQ(report.violations.size(), 2u);
    for (const auto& v : report.violations) {
        EXPECT_EQ(v.op_index, -1);
        EXPECT_NE(v.message.find("never executed"), std::string::npos);
    }
}

TEST(TierB, FlagsSizeMismatch)
{
    auto device = arch::make_line(4);
    auto problem = graph::Graph::clique(3);
    circuit::Circuit circ(circuit::Mapping(3, 3)); // wrong device size
    auto report = check_symbolic(device, problem, circ);
    EXPECT_FALSE(report.ok);
}

TEST(TierA, AcceptsCompiledCircuitsOnEveryTopology)
{
    for (arch::ArchKind kind : kRegularKinds) {
        auto device = arch::smallest_arch(kind, 5);
        if (device.num_qubits() > 14)
            continue; // heavy-hex may round up past the exact tier
        auto problem = problem::random_graph(5, 0.7, 23);
        auto circ = compile_on(device, problem);
        auto report = check_exact(device, problem, circ);
        ASSERT_FALSE(report.skipped) << arch::to_string(kind);
        EXPECT_TRUE(report.ok) << arch::to_string(kind) << ": "
                               << report.message;
        EXPECT_LE(report.spectrum_error, 1e-9);
        EXPECT_LE(report.state_infidelity, 1e-9);
    }
}

TEST(TierA, SkipsLargeDevices)
{
    auto device = arch::make_mumbai(); // 27 qubits
    auto problem = problem::clique(4);
    auto circ = compile_on(device, problem);
    auto report = check_exact(device, problem, circ);
    EXPECT_TRUE(report.skipped);
    EXPECT_TRUE(report.ok);
}

TEST(TierA, AngleSeedDoesNotChangeTheVerdict)
{
    auto device = arch::make_grid(2, 3);
    auto problem = problem::random_graph(5, 0.6, 5);
    auto circ = compile_on(device, problem);
    for (std::uint64_t seed : {1ull, 99ull, 0xdeadbeefull}) {
        ExactOptions options;
        options.angle_seed = seed;
        EXPECT_TRUE(check_exact(device, problem, circ, options).ok);
    }
}

TEST(AppliedTermMultiset, TracksTermsThroughSwaps)
{
    auto problem = graph::Graph::clique(3);
    circuit::Circuit circ(circuit::Mapping(3, 3));
    circ.add_compute(0, 1); // logicals (0,1)
    circ.add_swap(1, 2);    // logical 1 -> position 2
    circ.add_compute(0, 1); // logicals (0,2)
    circ.add_compute(1, 2); // logicals (2,1)
    auto terms = applied_term_multiset(circ);
    std::map<VertexPair, std::int64_t> expected = {
        {VertexPair(0, 1), 1},
        {VertexPair(0, 2), 1},
        {VertexPair(1, 2), 1},
    };
    EXPECT_EQ(terms, expected);
}

// The central mutation-testing matrix: every mutation kind on every
// topology must be flagged by BOTH tiers (zero false negatives). The
// problems are chosen so every mutation is applicable (cliques force
// SWAPs for misdirect-swap; ER graphs break the label symmetry that
// corrupt-mapping needs).
TEST(Mutations, BothTiersFlagEveryInjectedMiscompile)
{
    std::map<std::string, std::int64_t> tested;
    Xoshiro256 rng(0xfeedface);
    for (arch::ArchKind kind : kRegularKinds) {
        auto device = arch::smallest_arch(kind, 6);
        if (device.num_qubits() > 14)
            continue;
        for (int dense = 0; dense < 2; ++dense) {
            auto problem = dense ? problem::clique(6)
                                 : problem::random_graph(6, 0.5, 31);
            auto circ = compile_on(device, problem);
            for (Mutation m : kAllMutations) {
                circuit::Circuit mutant;
                try {
                    mutant = inject_mutation(device, circ, m, rng);
                } catch (const PanicError&) {
                    continue; // e.g. misdirect-swap on swap-free circuit
                }
                ++tested[to_string(m)];
                const std::string label =
                    std::string(arch::to_string(kind)) + "/" +
                    (dense ? "clique" : "er") + "/" + to_string(m);
                auto symbolic = check_symbolic(device, problem, mutant);
                EXPECT_FALSE(symbolic.ok)
                    << "tier B missed mutant: " << label;
                auto exact = check_exact(device, problem, mutant);
                ASSERT_FALSE(exact.skipped) << label;
                EXPECT_FALSE(exact.ok)
                    << "tier A missed mutant: " << label;
                // The legacy validator must agree with tier B.
                auto legacy = circuit::validate(mutant, device, problem);
                EXPECT_FALSE(legacy.ok)
                    << "validate() missed mutant: " << label;
            }
        }
    }
    // Every mutation kind was exercised at least once per family.
    for (Mutation m : kAllMutations)
        EXPECT_GE(tested[to_string(m)], 2) << to_string(m);
}

TEST(Mutations, InjectorGuaranteesSemanticDifference)
{
    auto device = arch::make_grid(2, 3);
    auto problem = problem::random_graph(6, 0.5, 7);
    auto circ = compile_on(device, problem);
    auto original = applied_term_multiset(circ);
    Xoshiro256 rng(11);
    for (Mutation m : kAllMutations) {
        try {
            auto mutant = inject_mutation(device, circ, m, rng);
            EXPECT_NE(applied_term_multiset(mutant), original)
                << to_string(m);
        } catch (const PanicError&) {
        }
    }
}

TEST(Mutations, NamesRoundTrip)
{
    for (Mutation m : kAllMutations) {
        Mutation parsed;
        ASSERT_TRUE(parse_mutation(to_string(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    Mutation out;
    EXPECT_FALSE(parse_mutation("no-such-mutation", out));
}

// Satellite requirement: tier A vs tier B agreement on 50 random small
// instances spanning every topology and every compiler. run_config()
// itself fails with kind "disagree" whenever the tiers (or the legacy
// validator) contradict each other, so a clean run is the assertion.
TEST(Agreement, FiftyRandomInstancesAllCheckersAgree)
{
    std::int64_t tier_a_runs = 0;
    std::map<std::string, std::int64_t> archs_seen;
    for (std::int64_t index = 0; index < 50; ++index) {
        auto config = random_config(0x5eed, index, 8);
        auto result = run_config(config);
        EXPECT_TRUE(result.ok)
            << "config " << index << " (" << config.compiler << " on "
            << config.arch << "): [" << result.kind << "] "
            << result.failure;
        tier_a_runs += result.tier_a_ran ? 1 : 0;
        ++archs_seen[config.arch];
    }
    // The stream must actually exercise the exact tier and span
    // several architectures (guards against a silently-skipping run).
    EXPECT_GE(tier_a_runs, 25);
    EXPECT_GE(archs_seen.size(), 4u);
}

TEST(QasmLint, AcceptsBothLoweringsAndFullQaoa)
{
    auto device = arch::smallest_arch(arch::ArchKind::Hexagon, 6);
    auto problem = problem::random_graph(6, 0.6, 3);
    auto circ = compile_on(device, problem);
    for (bool merge : {true, false}) {
        for (bool full : {true, false}) {
            circuit::QasmOptions options;
            options.merge_pairs = merge;
            options.full_qaoa = full;
            auto text = circuit::to_qasm(circ, options);
            EXPECT_EQ(qasm_lint(text, device, circ, options), "")
                << "merge=" << merge << " full=" << full;
        }
    }
}

TEST(QasmLint, FlagsTamperedPrograms)
{
    auto device = arch::make_line(3);
    auto problem = graph::Graph::clique(3);
    auto circ = compile_on(device, problem);
    circuit::QasmOptions options;
    const auto good = circuit::to_qasm(circ, options);
    ASSERT_EQ(qasm_lint(good, device, circ, options), "");

    // A dropped trailing gate breaks the CX accounting.
    auto truncated = good.substr(0, good.rfind("cx"));
    EXPECT_NE(qasm_lint(truncated, device, circ, options), "");
    // An extra single-qubit gate does not belong in a bare export.
    EXPECT_NE(qasm_lint(good + "h q[0];\n", device, circ, options), "");
    // A two-qubit gate off the line's couplers.
    EXPECT_NE(qasm_lint(good + "cx q[0],q[2];\n", device, circ, options),
              "");
    // Garbage statements are rejected, not skipped.
    EXPECT_NE(qasm_lint(good + "banana;\n", device, circ, options), "");
    // Out-of-range qubit index.
    EXPECT_NE(qasm_lint(good + "cx q[1],q[9];\n", device, circ, options),
              "");
}

TEST(Reproducer, SerializationRoundTrips)
{
    auto config = random_config(0xabc, 4, 8);
    config.inject = "drop-gate";
    CheckResult result;
    result.ok = false;
    result.kind = "tier-b";
    result.failure = "problem edge (0,1) never executed";
    const auto text = serialize_reproducer(config, result);

    std::istringstream in(text);
    FuzzConfig parsed;
    std::string error;
    ASSERT_TRUE(parse_reproducer(in, parsed, &error)) << error;
    // Serializing the parsed config reproduces the identical file.
    EXPECT_EQ(serialize_reproducer(parsed, result), text);
    EXPECT_EQ(parsed.arch, config.arch);
    EXPECT_EQ(parsed.num_vertices, config.num_vertices);
    EXPECT_EQ(parsed.edges, config.edges);
    EXPECT_EQ(parsed.compiler, config.compiler);
    EXPECT_EQ(parsed.inject, config.inject);
}

TEST(Reproducer, ParserRejectsMalformedInput)
{
    auto reject = [](const std::string& text) {
        std::istringstream in(text);
        FuzzConfig config;
        std::string error;
        bool ok = parse_reproducer(in, config, &error);
        EXPECT_FALSE(ok) << text;
        EXPECT_FALSE(error.empty());
    };
    reject("");                                    // missing version
    reject("version 2\n");                         // unsupported
    reject("version 1\nfrobnicate 3\n");           // unknown key
    reject("version 1\narch line\nvertices 4\n");  // no edges
    reject("version 1\narch line\nvertices 4\n"
           "edge 0 9\ncompiler ours\n");           // edge out of range
    reject("version 1\narch line\nvertices 4\n"
           "edge 0 1\nedge 0 1\ncompiler ours\n"); // duplicate edge
    reject("version 1\narch warp\nvertices 4\n"
           "edge 0 1\ncompiler ours\n");           // unknown arch
    reject("version 1\narch line\nvertices 4\n"
           "edge 0 1\ncompiler magic\n");          // unknown compiler
    reject("version 1\narch line\nvertices 4\n"
           "edge 0 1\ncompiler ours\ninject bad\n"); // unknown mutation
}

// End-to-end corpus flow: a failing (mutated) config shrinks while
// preserving the failure kind, serializes, parses back, and still
// fails the same way from the file contents alone.
TEST(Reproducer, ShrunkMutantReplaysFromFileAlone)
{
    FuzzConfig config;
    config.arch = "line";
    config.num_vertices = 5;
    config.edges = problem::clique(5).edges();
    config.compiler = "ours";
    config.inject = "drop-gate";
    config.inject_seed = 3;

    const auto original = run_config(config);
    ASSERT_FALSE(original.ok);
    // The 5-qubit line is within the exact tier, which reports first.
    ASSERT_EQ(original.kind, "tier-a");

    std::int64_t steps = 0;
    const auto shrunk = shrink_config(config, original, &steps);
    EXPECT_GT(steps, 0);
    EXPECT_LE(shrunk.edges.size(), config.edges.size());

    const auto text = serialize_reproducer(shrunk, original);
    std::istringstream in(text);
    FuzzConfig replayed;
    std::string error;
    ASSERT_TRUE(parse_reproducer(in, replayed, &error)) << error;
    const auto result = run_config(replayed);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.kind, original.kind);
}

TEST(RunConfig, DeterministicAcrossCalls)
{
    auto config = random_config(77, 5, 8);
    auto first = run_config(config);
    auto second = run_config(config);
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.kind, second.kind);
    EXPECT_EQ(first.failure, second.failure);
    EXPECT_EQ(first.tier_a_ran, second.tier_a_ran);
}

TEST(RunConfig, ExceptionsBecomeResultsNotCrashes)
{
    FuzzConfig config;
    config.arch = "line";
    config.num_vertices = 4;
    config.edges = {VertexPair(0, 1)};
    config.compiler = "nonexistent";
    auto result = run_config(config);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.kind, "exception");
    EXPECT_NE(result.failure.find("unknown compiler"), std::string::npos);
}

} // namespace
} // namespace permuq::verify
