/**
 * @file
 * Pattern explorer: the workflow of paper §3/§4 as a tool — run the
 * depth-optimal solver on a small instance, print its schedule cycle
 * by cycle, and compare with the generalized ATA pattern on the same
 * architecture family at a larger size.
 *
 *   $ ./examples/pattern_explorer [n]
 *
 * With the default n = 5 this reproduces the discovery of the linear
 * swap network (Fig 6): the solver's optimal schedule alternates
 * even/odd compute layers with odd/even swap layers.
 */
#include <cstdio>
#include <cstdlib>

#include "arch/coupling_graph.h"
#include "ata/ata.h"
#include "ata/replay.h"
#include "circuit/metrics.h"
#include "graph/graph.h"
#include "solver/astar.h"

namespace {

using namespace permuq;

void
print_schedule(const circuit::Circuit& circuit)
{
    Cycle depth = circuit.depth();
    for (Cycle cycle = 0; cycle < depth; ++cycle) {
        std::printf("  cycle %2d: ", cycle);
        for (const auto& op : circuit.ops()) {
            if (op.cycle != cycle)
                continue;
            std::printf("%s(%d,%d) ",
                        op.kind == circuit::OpKind::Compute ? "CZ"
                                                            : "SWAP",
                        op.p, op.q);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 5;
    if (n < 2 || n > 7) {
        std::fprintf(stderr, "usage: pattern_explorer [n in 2..7]\n");
        return 1;
    }

    // 1. Solve the small clique instance optimally (paper section 4).
    auto device = arch::make_line(n);
    auto clique = graph::Graph::clique(n);
    circuit::Mapping mapping(n, n);
    auto result = solver::solve_depth_optimal(device, clique, mapping);
    std::printf("line-%d clique: optimal depth %d "
                "(%lld A* expansions)\n",
                n, result.depth,
                static_cast<long long>(result.expansions));
    print_schedule(result.circuit);

    // 2. The generalizable structure extracted from such solutions is
    //    the 1xUnit pattern; apply it at 4x the size.
    std::int32_t big = 4 * n;
    auto big_device = arch::make_line(big);
    auto big_clique = graph::Graph::clique(big);
    circuit::Mapping big_mapping(big, big);
    auto sched = ata::full_ata_schedule(big_device);
    auto circ = ata::replay(big_device, big_clique, big_mapping, sched);
    circuit::expect_valid(circ, big_device, big_clique);
    auto metrics = circuit::compute_metrics(circ);
    std::printf("\ngeneralized pattern on line-%d: depth %d "
                "(= ~2n-2 = %d), %lld CX, every one of %lld pairs met "
                "exactly once\n",
                big, metrics.depth, 2 * big - 2,
                static_cast<long long>(metrics.cx_count),
                static_cast<long long>(metrics.compute_gates));
    return 0;
}
