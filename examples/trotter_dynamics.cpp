/**
 * @file
 * Trotterized spin dynamics on a compiled circuit: evolve an NNN
 * Heisenberg chain and compare the Trotterized state (whose term order
 * is whatever the compiler chose — any order is a valid first-order
 * Trotterization, which is precisely the permutability the compiler
 * exploits) against exact integration.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "core/compiler.h"
#include "problem/hamiltonians.h"
#include "sim/hamiltonian.h"

int
main()
{
    using namespace permuq;

    const std::int32_t spins = 10;
    auto interactions = problem::nnn_ising_1d(spins);
    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, spins);
    auto compiled = core::compile(device, interactions);
    std::printf("NNN Heisenberg chain, %d spins, %d terms; compiled to "
                "depth %d on %s\n\n",
                spins, interactions.num_edges(), compiled.metrics.depth,
                device.name().c_str());

    sim::SpinHamiltonian h;
    h.interactions = interactions;
    h.model = sim::SpinModel::Heisenberg;
    h.coupling = 0.35;

    // Domain-wall initial state |000001111>-like.
    sim::Statevector exact(spins);
    for (std::int32_t q = 0; q < spins / 2; ++q)
        exact.apply_x(q);
    auto initial = exact;

    const double time = 1.0;
    double e0 = sim::energy_expectation(h, exact);
    sim::exact_evolution(h, exact, time, 600);
    std::printf("exact evolution to t=%.1f: energy %.4f (conserved from "
                "%.4f)\n\n",
                time, sim::energy_expectation(h, exact), e0);

    std::printf("%-8s %-12s %-10s\n", "steps", "fidelity", "energy");
    for (std::int32_t steps : {1, 2, 4, 8, 16, 32}) {
        auto trotter = initial;
        sim::trotter_evolution(h, compiled.circuit, trotter, time, steps);
        std::printf("%-8d %-12.6f %-10.4f\n", steps,
                    sim::state_fidelity(exact, trotter),
                    sim::energy_expectation(h, trotter));
    }
    std::printf("\nfirst-order Trotter error decays ~1/steps; the gate "
                "order is the compiler's, illustrating that every "
                "permutation of the terms is a valid program.\n");
    return 0;
}
