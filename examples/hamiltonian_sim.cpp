/**
 * @file
 * 2-local Hamiltonian simulation compilation (paper §7.5): compile the
 * three NNN interaction models onto a heavy-hex device, with and
 * without calibration noise awareness, and compare the estimated
 * success probability of one Trotter step.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "circuit/metrics.h"
#include "core/compiler.h"
#include "problem/hamiltonians.h"

int
main()
{
    using namespace permuq;

    auto device = arch::smallest_arch(arch::ArchKind::HeavyHex, 64);
    auto noise = arch::NoiseModel::calibrated(device, /*seed=*/42);
    std::printf("device: %s, calibrated noise (median CX error 1%%)\n\n",
                device.name().c_str());

    struct Model
    {
        const char* name;
        graph::Graph interactions;
    };
    Model models[] = {
        {"NNN 1D-Ising (64 spins)", problem::nnn_ising_1d(64)},
        {"NNN 2D-XY (8x8)", problem::nnn_xy_2d(8, 8)},
        {"NNN 3D-Heisenberg (4x4x4)", problem::nnn_heisenberg_3d(4, 4, 4)},
    };

    for (auto& model : models) {
        // One Trotter step applies one permutable two-qubit block per
        // interaction term — exactly a QAOA-style compilation problem.
        core::CompilerOptions plain;
        core::CompilerOptions aware;
        aware.noise = &noise;

        auto blind = core::compile(device, model.interactions, plain);
        auto tuned = core::compile(device, model.interactions, aware);
        circuit::expect_valid(tuned.circuit, device, model.interactions);

        auto m_blind = circuit::compute_metrics(blind.circuit, &noise);
        auto m_tuned = circuit::compute_metrics(tuned.circuit, &noise);
        std::printf("%s: %d terms\n", model.name,
                    model.interactions.num_edges());
        std::printf("  noise-blind: depth %4d, %5lld CX, ESP %.4f\n",
                    m_blind.depth,
                    static_cast<long long>(m_blind.cx_count),
                    m_blind.fidelity);
        std::printf("  noise-aware: depth %4d, %5lld CX, ESP %.4f\n\n",
                    m_tuned.depth,
                    static_cast<long long>(m_tuned.cx_count),
                    m_tuned.fidelity);
    }
    return 0;
}
