/**
 * @file
 * Quickstart: compile a QAOA-MaxCut problem onto a Google Sycamore
 * chip and inspect the result.
 *
 *   $ ./examples/quickstart
 *
 * This walks the core public API end to end:
 *   1. pick an architecture (arch::smallest_arch / make_*),
 *   2. build a problem graph (problem::random_graph — one edge per
 *      permutable two-qubit operator),
 *   3. compile (core::compile) — greedy + ATA pattern prediction,
 *   4. validate and read the metrics.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "circuit/metrics.h"
#include "core/compiler.h"
#include "problem/generators.h"

int
main()
{
    using namespace permuq;

    // 1. A Sycamore chip just big enough for 64 program qubits.
    auto device = arch::smallest_arch(arch::ArchKind::Sycamore, 64);
    std::printf("device: %s (%d qubits, %d couplers)\n",
                device.name().c_str(), device.num_qubits(),
                device.connectivity().num_edges());

    // 2. A random MaxCut instance: vertices are program qubits, edges
    //    are CPHASE gates; all of them commute (paper Fig 2).
    auto problem = problem::random_graph(64, 0.3, /*seed=*/7);
    std::printf("problem: %d qubits, %d permutable two-qubit gates\n",
                problem.num_vertices(), problem.num_edges());

    // 3. Compile. The compiler runs its greedy engine, records hybrid
    //    snapshot candidates, predicts the all-to-all-pattern tail for
    //    each, and selects the best full circuit (paper section 6).
    auto result = core::compile(device, problem);

    // 4. The result is checked here the same way the test suite checks
    //    it: every op on a coupler, every problem edge exactly once.
    circuit::expect_valid(result.circuit, device, problem);

    std::printf("compiled (%s candidate won in %.3f s):\n",
                result.selected.c_str(), result.compile_seconds);
    std::printf("  depth      : %d cycles\n", result.metrics.depth);
    std::printf("  CX count   : %lld (after CPHASE+SWAP merging: %lld "
                "pairs merged)\n",
                static_cast<long long>(result.metrics.cx_count),
                static_cast<long long>(result.metrics.merged_pairs));
    std::printf("  swaps      : %lld\n",
                static_cast<long long>(result.metrics.swap_gates));
    std::printf("  worst case : depth stays linear in qubit count "
                "(Theorem 6.1)\n");
    return 0;
}
