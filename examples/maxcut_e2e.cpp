/**
 * @file
 * End-to-end QAOA-MaxCut on a noisy simulated IBM Mumbai device
 * (the paper's §7.4 experiment as a library user would run it):
 * compile, then drive the variational loop — the classical optimizer
 * tunes (gamma, beta) against the noisy expected cut value — and
 * compare the best sampled cut with the true maximum cut.
 */
#include <cstdio>

#include "arch/coupling_graph.h"
#include "arch/noise_model.h"
#include "core/compiler.h"
#include "problem/generators.h"
#include "sim/nelder_mead.h"
#include "sim/qaoa.h"

int
main()
{
    using namespace permuq;

    auto device = arch::make_mumbai();
    auto noise = arch::NoiseModel::calibrated(device, /*seed=*/11);
    auto problem = problem::random_graph(12, 0.3, /*seed=*/21);
    std::int32_t optimum = sim::max_cut(problem);
    std::printf("12-qubit MaxCut on simulated %s: true optimum = %d\n",
                device.name().c_str(), optimum);

    auto compiled = core::compile(device, problem);
    std::printf("compiled: depth %d, %lld CX\n", compiled.metrics.depth,
                static_cast<long long>(compiled.metrics.cx_count));

    // Variational loop: minimize the negated noisy expectation.
    std::int32_t eval = 0;
    auto objective = [&](const std::vector<double>& x) {
        sim::QaoaAngles angles{{x[0]}, {x[1]}};
        sim::NoisySimOptions options;
        options.trajectories = 16;
        options.shots = 4000;
        options.seed = 500 + static_cast<std::uint64_t>(eval++);
        return -sim::noisy_expectation(problem, compiled.circuit, noise,
                                       angles, options);
    };
    auto best = sim::nelder_mead(objective, {0.3, 0.2}, 0.4, 30);

    std::printf("after %zu optimizer rounds: <C> = %.3f "
                "(%.0f%% of optimum; gamma=%.3f beta=%.3f)\n",
                best.history.size(), -best.best_f,
                100.0 * -best.best_f / optimum, best.best_x[0],
                best.best_x[1]);

    // Read out the most likely cuts at the tuned angles.
    sim::QaoaAngles tuned{{best.best_x[0]}, {best.best_x[1]}};
    auto counts = sim::noisy_counts(problem, compiled.circuit, noise,
                                    tuned, {16, 8000, 999, true});
    std::uint64_t best_state = 0;
    std::int32_t best_cut = -1;
    for (std::size_t z = 0; z < counts.size(); ++z) {
        if (counts[z] > 0) {
            std::int32_t cut = sim::cut_value(problem,
                                              static_cast<std::uint64_t>(z));
            if (cut > best_cut) {
                best_cut = cut;
                best_state = z;
            }
        }
    }
    std::printf("best sampled partition: 0x%03llx with cut %d/%d\n",
                static_cast<unsigned long long>(best_state), best_cut,
                optimum);
    return 0;
}
